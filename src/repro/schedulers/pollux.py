"""Pollux baseline: adaptive scheduling via a genetic algorithm, blind to
GPU heterogeneity (Section 2.1 and 4.3).

Faithful-to-behaviour reimplementation of the aspects the paper evaluates:

* **Type blindness** — each job has a *single* throughput model fed by
  observations from whatever GPUs the job happened to run on
  (:class:`PolluxEstimator`).  On a heterogeneous cluster those
  measurements conflate GPU types, yielding the noisy estimates the paper
  describes; on a homogeneous cluster the model is exact, matching
  Pollux's published behaviour.
* **Genetic search** — per round, a GA optimizes the vector of per-job GPU
  counts, maximizing the Pollux fitness (sum of ``speedup^p`` with
  ``p = -1``), with per-gene mutation and uniform crossover.  The GA
  considers 1-GPU steps (Table 3 attributes Pollux's extra restarts to
  this) and is polynomial-per-generation but needs many generations as the
  cluster grows — reproducing the Figure 9 scaling gap.
* **Virtual 4-GPU nodes and the mixed-type fix-up** — 8-GPU nodes are
  presented as two virtual 4-GPU nodes; after placement, allocations that
  span GPU types are cut down to the majority type (ties broken toward the
  more powerful type), per Section 4.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import power_rank
from repro.core.matrix import restart_factor
from repro.core.types import Allocation, Configuration
from repro.perf import profiles
from repro.perf.efficiency import EfficiencyModel
from repro.perf.fitting import FitResult, Observation, fit_throughput_params
from repro.perf.goodput import BatchPlan, GoodputModel
from repro.perf.throughput import ThroughputModel, ThroughputParams
from repro.schedulers.base import JobView, RoundPlan, Scheduler

#: Pollux's fairness exponent (Section 4.3: p = -1).
POLLUX_P = -1.0

_PRIOR_PARAMS = ThroughputParams(alpha_c=0.05, beta_c=0.01,
                                 alpha_r=0.01, beta_r=0.001,
                                 alpha_n=0.05, beta_n=0.005)

#: Pollux presents every node as virtual nodes of this size (Section 4.3).
VIRTUAL_NODE_SIZE = 4


class PolluxEstimator:
    """Type-blind goodput estimator: one throughput model per *job*.

    Implements the same protocol as
    :class:`~repro.perf.estimator.JobPerfEstimator` so the simulator can
    treat schedulers uniformly, but merges observations across GPU types —
    Pollux assumes the cluster is homogeneous.
    """

    def __init__(self, model_name: str, constraints, gpu_types: tuple[str, ...]):
        self.model_name = model_name
        self.constraints = constraints
        self.gpu_types = gpu_types
        self._observations: list[Observation] = []
        self._fit: FitResult | None = None
        self._dirty = False
        self._efficiency = EfficiencyModel(
            profiles.true_efficiency_params(model_name))
        self.profiling_gpu_seconds = 0.0
        self._cache: dict[tuple[int, int], BatchPlan | None] = {}

    def profile_initial(self) -> float:
        """Pollux does no up-front profiling (Section 2.1)."""
        return 0.0

    def add_observation(self, obs: Observation) -> None:
        self._observations.append(obs)
        self._dirty = True
        self._cache.clear()

    def update_gradient_stats(self, observed_noise_scale: float) -> None:
        current = self._efficiency.params.grad_noise_scale
        if abs(observed_noise_scale - current) <= 1e-9 * max(current, 1.0):
            return
        self._efficiency.update_noise_scale(observed_noise_scale)
        self._cache.clear()

    def _model(self) -> ThroughputModel:
        if self._dirty and self._observations:
            self._fit = fit_throughput_params(self._observations)
            self._dirty = False
        params = self._fit.params if self._fit is not None else _PRIOR_PARAMS
        return ThroughputModel(params)

    def max_local_bsz(self) -> int:
        """Memory cap assuming all GPUs match the smallest-memory type the
        model fits on — the conservative choice a type-blind system makes."""
        caps = [profiles.max_local_bsz(self.model_name, t)
                for t in self.gpu_types]
        caps = [min(c, self.constraints.max_bsz) for c in caps if c > 0]
        return min(caps) if caps else 0

    def best_plan(self, num_gpus: int, num_nodes: int) -> BatchPlan | None:
        key = (num_gpus, num_nodes)
        if key in self._cache:
            return self._cache[key]
        cap = self.max_local_bsz()
        plan = None
        if cap >= 1 and num_gpus >= 1:
            model = GoodputModel(self._model(), self._efficiency)
            plan = model.optimize_batch_size(
                num_gpus, num_nodes, max_local_bsz=cap,
                max_total_bsz=self.constraints.max_bsz,
                min_total_bsz=self.constraints.min_bsz,
                fixed_total_bsz=self.constraints.fixed_total_bsz)
        self._cache[key] = plan
        return plan

    def goodput(self, config: Configuration) -> float:
        """Configuration-based query (protocol compatibility)."""
        plan = self.best_plan(config.num_gpus, config.num_nodes)
        return plan.goodput if plan is not None else 0.0

    @property
    def efficiency_model(self) -> EfficiencyModel:
        return self._efficiency


@dataclass
class GAParams:
    """Genetic-algorithm knobs.

    Pollux's search space grows exponentially with node count (it considers
    every placement of every job across nodes), so the GA needs more search
    effort on larger clusters to keep solution quality — modeled here by
    scaling the generation count with the number of virtual nodes.  This is
    what produces the Figure 9 scaling gap: on a 64-GPU cluster the scaling
    factor is 1 (no effect on the trace simulations)."""

    population: int = 24
    generations: int = 20
    mutation_rate: float = 0.25
    seed: int = 0
    #: virtual-node count at which generations start scaling up.
    reference_nodes: int = 16
    scale_with_nodes: bool = True

    def effective_generations(self, num_virtual_nodes: int) -> int:
        if not self.scale_with_nodes:
            return self.generations
        factor = max(1.0, num_virtual_nodes / self.reference_nodes)
        return int(round(self.generations * factor))


class PolluxScheduler(Scheduler):
    """Pollux: goodput-driven auto-scaling for homogeneous clusters."""

    name = "pollux"

    def __init__(self, ga: GAParams | None = None,
                 round_duration: float = 60.0):
        self.ga = ga or GAParams()
        self.round_duration = round_duration
        self._rng = np.random.default_rng(self.ga.seed)

    def make_estimator(self, job, cluster, profiling_mode):
        """Pollux jobs carry a single type-blind goodput model."""
        if job.is_hybrid:
            return super().make_estimator(job, cluster, profiling_mode)
        return PolluxEstimator(job.model_name, job.constraints(),
                               cluster.gpu_types)

    # -- speedup tables --------------------------------------------------------

    def _nodes_for(self, count: int) -> int:
        return max(1, -(-count // VIRTUAL_NODE_SIZE))

    def _speedup_table(self, view: JobView, max_count: int) -> np.ndarray:
        """speedup[k] for k in 0..max_count; 0 GPUs -> tiny epsilon."""
        table = np.full(max_count + 1, 1e-3)
        estimator: PolluxEstimator = view.estimator  # type: ignore[assignment]
        base_plan = estimator.best_plan(1, 1)
        base = base_plan.goodput if base_plan is not None else 0.0
        if base <= 0:
            return table
        factor = restart_factor(view.age, view.num_restarts,
                                view.job.restart_delay)
        current = view.current_config.num_gpus if view.current_config else 0
        lo = view.job.effective_min_gpus
        hi = min(max_count, view.job.effective_max_gpus)
        for k in range(lo, hi + 1):
            plan = estimator.best_plan(k, self._nodes_for(k))
            if plan is None:
                continue
            speedup = plan.goodput / base
            if k != current:
                speedup *= max(factor, 1e-3)
            table[k] = max(speedup, 1e-3)
        return table

    # -- genetic algorithm ------------------------------------------------------

    def _fitness(self, genome: np.ndarray, tables: list[np.ndarray]) -> float:
        # Pollux maximizes (mean of speedup^p)^(1/p) with p = -1; for a fixed
        # job set this is equivalent to minimizing sum(1/speedup).
        total = 0.0
        for i, count in enumerate(genome):
            total += tables[i][count] ** POLLUX_P
        return -total

    def _repair(self, genome: np.ndarray, mins: np.ndarray,
                capacity: int) -> np.ndarray:
        genome = genome.copy()
        # Genes below the job minimum are rounded down to zero (no resources).
        below = (genome > 0) & (genome < mins)
        genome[below] = 0
        while genome.sum() > capacity:
            candidates = np.where(genome > 0)[0]
            victim = self._rng.choice(candidates)
            if genome[victim] > mins[victim]:
                genome[victim] -= 1
            else:
                genome[victim] = 0
        return genome

    def _evolve(self, views: list[JobView], capacity: int,
                max_count: int, num_virtual_nodes: int,
                tables: list[np.ndarray]) -> np.ndarray:
        mins = np.array([v.job.effective_min_gpus for v in views])
        maxs = np.array([min(max_count, v.job.effective_max_gpus)
                         for v in views])
        current = np.array([
            v.current_config.num_gpus if v.current_config else 0
            for v in views])

        population = [self._repair(current.copy(), mins, capacity)]
        ones = np.minimum(np.maximum(mins, 1), maxs)
        population.append(self._repair(ones.copy(), mins, capacity))
        while len(population) < self.ga.population:
            genome = self._rng.integers(0, maxs + 1)
            population.append(self._repair(genome, mins, capacity))

        scores = [self._fitness(g, tables) for g in population]
        for _ in range(self.ga.effective_generations(num_virtual_nodes)):
            order = np.argsort(scores)[::-1]
            elite = [population[i] for i in order[: max(2, len(order) // 3)]]
            children: list[np.ndarray] = list(elite)
            while len(children) < self.ga.population:
                a, b = self._rng.integers(0, len(elite), size=2)
                mask = self._rng.random(len(views)) < 0.5
                child = np.where(mask, elite[a], elite[b])
                mutate = self._rng.random(len(views)) < self.ga.mutation_rate
                for i in np.where(mutate)[0]:
                    choice = self._rng.integers(0, 4)
                    if choice == 0:
                        child[i] = 0
                    elif choice == 1:
                        child[i] = min(maxs[i], max(mins[i], 1))
                    elif choice == 2:
                        child[i] = min(maxs[i], max(child[i] * 2, 1))
                    else:
                        child[i] = child[i] // 2
                children.append(self._repair(child, mins, capacity))
            population = children
            scores = [self._fitness(g, tables) for g in population]
        return population[int(np.argmax(scores))]

    # -- placement + type fix-up --------------------------------------------------

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        if not views:
            return RoundPlan()
        with self.planning(views) as timer:
            with timer.phase("bootstrap"):
                capacity = cluster.total_gpus
                max_count = min(capacity,
                                max(v.job.effective_max_gpus for v in views))
                num_virtual_nodes = max(1, capacity // VIRTUAL_NODE_SIZE)
            with timer.phase("goodput_eval"):
                tables = [self._speedup_table(v, max_count) for v in views]
            with timer.phase("solve", generations=self.ga.
                             effective_generations(num_virtual_nodes)):
                best = self._evolve(views, capacity, max_count,
                                    num_virtual_nodes, tables)

            # Greedy placement onto virtual nodes, largest jobs first;
            # Pollux may span types — the fix-up trims to one type.
            with timer.phase("placement"):
                plan = RoundPlan()
                occupancy: dict[int, int] = {}
                order = sorted(range(len(views)), key=lambda i: -best[i])
                for i in order:
                    count = int(best[i])
                    if count < 1:
                        continue
                    view = views[i]
                    allocation = self._place_mixed(cluster, count, occupancy,
                                                   previous.get(view.job_id))
                    if allocation is None:
                        continue
                    allocation = self._fix_mixed_types(allocation, view)
                    if allocation is not None:
                        plan.allocations[view.job_id] = allocation
            # Estimates come from the jobs' type-blind models — exactly the
            # (possibly conflated) numbers the GA's fitness ran on.
            self.record_estimates(views, plan)
            return timer.finish(plan)

    def _place_mixed(self, cluster: Cluster, count: int,
                     occupancy: dict[int, int],
                     previous: Allocation | None) -> list | None:
        """Type-blind packing: fill the freest nodes regardless of type.
        Returns a list of (node, taken) pairs or None."""
        preferred = set(previous.node_ids) if previous is not None else set()
        nodes = sorted(cluster.nodes, key=lambda n: (
            n.node_id not in preferred,
            -(n.num_gpus - occupancy.get(n.node_id, 0)),
            n.node_id))
        taken: list[tuple] = []
        remaining = count
        for node in nodes:
            free = node.num_gpus - occupancy.get(node.node_id, 0)
            if free <= 0:
                continue
            grab = min(free, remaining)
            taken.append((node, grab))
            remaining -= grab
            if remaining == 0:
                break
        if remaining > 0:
            return None
        for node, grab in taken:
            occupancy[node.node_id] = occupancy.get(node.node_id, 0) + grab
        return taken

    def _fix_mixed_types(self, taken: list, view: JobView) -> Allocation | None:
        """Section 4.3 heuristic: keep only the GPU type with the most GPUs
        (ties -> more powerful type); the rest idle this round."""
        by_type: dict[str, dict[int, int]] = {}
        for node, grab in taken:
            by_type.setdefault(node.gpu_type, {})[node.node_id] = grab
        winner = max(by_type, key=lambda t: (
            sum(by_type[t].values()), -power_rank(t)))
        kept = by_type[winner]
        if sum(kept.values()) < view.job.effective_min_gpus:
            return None
        return Allocation.build(winner, kept)

"""Shockwave baseline (simplified from [61]).

Shockwave schedules *rigid* jobs (fixed GPU count and batch size) and plans
for finish-time fairness while penalizing schedules with large makespan.
The full system solves a market-equilibrium program over future epochs; we
reproduce the behaviour the paper compares against with a priority
mechanism that keeps its two signature ingredients (documented as a
simplification in DESIGN.md):

* jobs are prioritized by their *projected finish-time-fairness ratio* —
  how much later than its fair isolated finish the job will land if it
  keeps waiting — which bounds worst-case unfairness;
* a progress-efficiency tiebreak prefers jobs with little remaining work,
  which trims both average JCT and makespan (the Table 4 gap over Themis).

Rounds are 360 s (Section 4.3).
"""

from __future__ import annotations

import math

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation, Configuration
from repro.schedulers.base import (JobView, RoundPlan, Scheduler,
                                   pack_gpus_on_type)


def fair_finish_ratio(view: JobView, cluster: Cluster, now: float,
                      contention: int) -> float:
    """Projected FTF ratio: (elapsed + remaining at the job's fixed
    allocation) / (isolated finish in a 1/contention-sized cluster)."""
    count = max(1, view.job.effective_min_gpus)
    best_rate = 0.0
    for gpu_type in cluster.gpu_types:
        if count > cluster.capacity(gpu_type):
            continue
        nodes = max(1, -(-count // cluster.max_node_size(gpu_type)))
        rate = view.estimator.goodput(Configuration(nodes, count, gpu_type))
        best_rate = max(best_rate, rate)
    if best_rate <= 0:
        return math.inf
    remaining_work = view.job.target_samples - view.progress
    isolated = view.job.target_samples / best_rate
    elapsed = now - view.job.submit_time
    projected = elapsed + remaining_work / best_rate
    # In a fair cluster the job would share with `contention` peers.
    fair_jct = isolated * max(1, contention)
    return projected / fair_jct


class ShockwaveScheduler(Scheduler):
    """FTF-aware inelastic scheduler with an efficiency/makespan tier.

    Two-tier priority: jobs whose projected FTF ratio exceeds
    ``unfair_threshold`` form an "at-risk" tier served worst-first (bounding
    unfairness); everyone else is served shortest-remaining-first, which
    trims average JCT and makespan — the Table 4 gap over Themis.
    """

    name = "shockwave"
    oracle_estimators = True
    #: FTF ratio above which a job jumps to the at-risk tier.
    unfair_threshold: float = 1.0

    def __init__(self, round_duration: float = 360.0,
                 unfair_threshold: float = 1.0):
        self.round_duration = round_duration
        self.unfair_threshold = unfair_threshold

    def _priority(self, view: JobView, cluster: Cluster, now: float,
                  contention: int) -> tuple[int, float]:
        rho = fair_finish_ratio(view, cluster, now, contention)
        if math.isinf(rho):
            return (-1, 0.0)
        if rho > self.unfair_threshold:
            return (1, rho)  # at-risk tier: most unfair first
        remaining = view.remaining_fraction * view.job.target_samples
        return (0, -remaining)  # fair tier: shortest remaining work first

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        if not views:
            return RoundPlan()
        with self.planning(views) as timer:
            with timer.phase("bootstrap"):
                contention = len(views)
            with timer.phase("goodput_eval"):
                priorities = [self._priority(v, cluster, now, contention)
                              for v in views]
            with timer.phase("solve"):
                ranked = [views[i] for i in
                          sorted(range(len(views)),
                                 key=lambda i: priorities[i], reverse=True)]
            with timer.phase("placement"):
                plan = RoundPlan()
                occupancy: dict[int, int] = {}
                for view in ranked:
                    allocation = place_rigid(view, cluster, occupancy,
                                             previous.get(view.job_id))
                    if allocation is not None:
                        plan.allocations[view.job_id] = allocation
            self.record_estimates(views, plan)
            return timer.finish(plan)


def place_rigid(view: JobView, cluster: Cluster, occupancy: dict[int, int],
                previous: Allocation | None) -> Allocation | None:
    """Place a rigid job's fixed GPU count: stay put (no checkpoint-restore)
    unless the current GPU type is less than half as fast as the best
    available one, in which case the restart is worth paying."""
    count = max(1, view.job.effective_min_gpus)

    def rate(gpu_type: str) -> float:
        nodes = max(1, -(-count // cluster.max_node_size(gpu_type)))
        return view.estimator.goodput(Configuration(nodes, count, gpu_type))

    by_rate = sorted(cluster.gpu_types, key=lambda t: -rate(t))
    ordered_types: list[str] = []
    if previous is not None and by_rate \
            and rate(previous.gpu_type) >= 0.5 * rate(by_rate[0]):
        ordered_types.append(previous.gpu_type)
    for gpu_type in by_rate:
        if gpu_type not in ordered_types:
            ordered_types.append(gpu_type)
    for gpu_type in ordered_types:
        if count > cluster.capacity(gpu_type):
            continue
        nodes = max(1, -(-count // cluster.max_node_size(gpu_type)))
        rate = view.estimator.goodput(Configuration(nodes, count, gpu_type))
        if rate <= 0:
            continue
        preferred = previous.node_ids if previous is not None \
            and previous.gpu_type == gpu_type else ()
        allocation = pack_gpus_on_type(cluster, gpu_type, count,
                                       occupancy, preferred)
        if allocation is not None:
            return allocation
    return None

"""Sia scheduler: the core ILP policy plus the Section 3.1 Placer."""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.placement import Placer
from repro.core.policy import SiaPolicy, SiaPolicyParams
from repro.core.types import Allocation
from repro.schedulers.base import JobView, RoundPlan, Scheduler


class SiaScheduler(Scheduler):
    """Heterogeneity-aware, goodput-optimized scheduler (the paper's system).

    Defaults follow Section 4.3: 60 s rounds, p = -0.5, lambda = 1.1.
    """

    name = "sia"

    def __init__(self, params: SiaPolicyParams | None = None,
                 round_duration: float = 60.0):
        self.policy = SiaPolicy(params)
        self.round_duration = round_duration
        self._placer: Placer | None = None

    @property
    def params(self) -> SiaPolicyParams:
        return self.policy.params

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        # The policy emits the bootstrap/goodput_eval/solve phase spans; the
        # Placer runs under the placement span, all children of our plan
        # span.  solve_time covers the whole plan path (phases sum to it).
        self.policy.tracer = self.tracer
        self.policy.metrics = self.metrics
        self.policy.health_discounts = self.health_discounts
        with self.planning(views) as timer:
            if self._placer is None or self._placer.cluster is not cluster:
                self._placer = Placer(cluster)
            # ``previous`` doubles as the solver warm start: the policy
            # re-keys it onto this round's (row, col) indices.
            decision = self.policy.decide(views, cluster, now,
                                          previous=previous)
            pinned = {v.job_id for v in views
                      if not v.job.preemptible and v.is_running}
            with timer.phase("placement"):
                placement = self._placer.place(decision.assignments, previous,
                                               pinned=pinned)
            plan = RoundPlan(allocations=placement.allocations,
                             objective=decision.objective,
                             backend=decision.backend,
                             degraded=decision.degraded,
                             estimates={jid: est for jid, est
                                        in decision.estimates.items()
                                        if jid in placement.allocations})
            # The ILP's own numbers win; the base hook fills any job the
            # Placer allocated without a policy estimate.
            self.record_estimates(views, plan)
            return timer.finish(plan)

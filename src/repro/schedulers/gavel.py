"""Gavel baseline: heterogeneity-aware scheduling of *rigid* jobs via a
linear program plus round-based space-time sharing (Section 2.1, [40]).

Gavel's max-sum-throughput policy solves, each round, the LP::

    max  sum_{j,t} xput[j,t] * X[j,t]
    s.t. sum_t X[j,t] <= 1                    (per job: total time fraction)
         sum_j g_j * X[j,t] <= C_t            (per type: GPU capacity)
         0 <= X[j,t] <= 1

where ``g_j`` is the job's submitter-fixed GPU count and ``xput[j,t]`` its
throughput with ``g_j`` GPUs of type ``t`` at its fixed batch size (Gavel
assumes the throughput matrix is known; we query an oracle-mode estimator).

The fractional solution is realized with Gavel's round-based mechanism:
each (job, type) pair accumulates a deficit ``X[j,t] * rounds_elapsed -
rounds_received[j,t]`` and the highest-deficit pairs run this round.  The
resulting job rotation across GPU types is exactly the time-sharing
behaviour whose checkpoint-restore overheads the paper highlights
(Table 3's congestion feedback loop, Figure 6's BERT rotation).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation, Configuration
from repro.schedulers.base import (JobView, RoundPlan, Scheduler,
                                   pack_gpus_on_type)


class GavelScheduler(Scheduler):
    """Gavel with TunedJobs inputs and a selectable policy.

    ``policy='max_sum_throughput'`` (the paper's choice — lowest average JCT
    on Philly among Gavel's policies) maximizes aggregate normalized
    throughput; ``policy='max_min_fairness'`` maximizes the worst job's
    normalized throughput share (Gavel's LAS-style fairness objective),
    trading average JCT for tail behaviour.
    """

    name = "gavel"
    oracle_estimators = True
    POLICIES = ("max_sum_throughput", "max_min_fairness")

    def __init__(self, round_duration: float = 360.0,
                 policy: str = "max_sum_throughput"):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown Gavel policy {policy!r}; "
                             f"choose from {self.POLICIES}")
        self.round_duration = round_duration
        self.policy = policy
        #: (job_id, gpu_type) -> rounds of service received.
        self._received: dict[tuple[str, str], float] = {}
        self._rounds_elapsed: dict[str, float] = {}

    # -- LP -----------------------------------------------------------------

    def _throughput_matrix(self, views: list[JobView], cluster: Cluster,
                           counts: list[int]) -> np.ndarray:
        types = cluster.gpu_types
        matrix = np.zeros((len(views), len(types)))
        for i, view in enumerate(views):
            cols: list[int] = []
            cfgs: list[Configuration] = []
            for k, gpu_type in enumerate(types):
                if counts[i] > cluster.capacity(gpu_type):
                    continue
                nodes = max(1, -(-counts[i] // cluster.max_node_size(gpu_type)))
                cols.append(k)
                cfgs.append(Configuration(nodes, counts[i], gpu_type))
            batch = getattr(view.estimator, "goodput_batch", None)
            if batch is not None:
                matrix[i, cols] = batch(cfgs)
            else:
                for k, config in zip(cols, cfgs):
                    matrix[i, k] = view.estimator.goodput(config)
        return matrix

    def _solve_lp(self, xput: np.ndarray, counts: list[int],
                  capacities: list[int]) -> np.ndarray:
        n_jobs, n_types = xput.shape
        n_vars = n_jobs * n_types
        c = -xput.reshape(-1)
        rows = []
        ub = []
        for i in range(n_jobs):
            row = np.zeros(n_vars)
            row[i * n_types:(i + 1) * n_types] = 1.0
            rows.append(row)
            ub.append(1.0)
        for k in range(n_types):
            row = np.zeros(n_vars)
            for i in range(n_jobs):
                row[i * n_types + k] = counts[i]
            rows.append(row)
            ub.append(capacities[k])
        result = linprog(c, A_ub=np.vstack(rows), b_ub=np.array(ub),
                         bounds=(0.0, 1.0), method="highs")
        if not result.success:
            raise RuntimeError(f"Gavel LP failed: {result.message}")
        solution = result.x.reshape(n_jobs, n_types)
        # Zero out infeasible pairs the LP kept at numerical noise.
        solution[xput <= 0] = 0.0
        return solution

    def _solve_lp_max_min(self, xput: np.ndarray, counts: list[int],
                          capacities: list[int]) -> np.ndarray:
        """max-min fairness LP: maximize z subject to each job's normalized
        effective throughput being at least z."""
        n_jobs, n_types = xput.shape
        norms = xput.max(axis=1)
        feasible = norms > 0
        if not feasible.any():
            return np.zeros_like(xput)
        n_vars = n_jobs * n_types + 1  # X entries + z
        c = np.zeros(n_vars)
        c[-1] = -1.0  # maximize z
        rows = []
        ub = []
        for i in range(n_jobs):
            row = np.zeros(n_vars)
            row[i * n_types:(i + 1) * n_types] = 1.0
            rows.append(row)
            ub.append(1.0)
            if feasible[i]:
                # z - sum_t X[i,t] * xput[i,t]/norm_i <= 0
                row = np.zeros(n_vars)
                row[i * n_types:(i + 1) * n_types] = -xput[i] / norms[i]
                row[-1] = 1.0
                rows.append(row)
                ub.append(0.0)
        for k in range(n_types):
            row = np.zeros(n_vars)
            for i in range(n_jobs):
                row[i * n_types + k] = counts[i]
            rows.append(row)
            ub.append(capacities[k])
        bounds = [(0.0, 1.0)] * (n_jobs * n_types) + [(0.0, None)]
        result = linprog(c, A_ub=np.vstack(rows), b_ub=np.array(ub),
                         bounds=bounds, method="highs")
        if not result.success:
            raise RuntimeError(f"Gavel max-min LP failed: {result.message}")
        solution = result.x[:-1].reshape(n_jobs, n_types)
        solution[xput <= 0] = 0.0
        return solution

    # -- round mechanism ------------------------------------------------------

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        if not views:
            return RoundPlan()
        with self.planning(views) as timer:
            with timer.phase("bootstrap"):
                types = cluster.gpu_types
                counts = [max(1, v.job.effective_min_gpus) for v in views]
                capacities = [cluster.capacity(t) for t in types]
            with timer.phase("goodput_eval"):
                xput = self._throughput_matrix(views, cluster, counts)
            with timer.phase("solve", policy=self.policy):
                if self.policy == "max_min_fairness":
                    allocation_fractions = self._solve_lp_max_min(
                        xput, counts, capacities)
                else:
                    allocation_fractions = self._solve_lp(
                        xput, counts, capacities)

            with timer.phase("placement"):
                for view in views:
                    self._rounds_elapsed[view.job_id] = \
                        self._rounds_elapsed.get(view.job_id, 0.0) + 1.0

                # Deficit-ordered selection.
                candidates: list[tuple[float, int, int]] = []
                for i, view in enumerate(views):
                    elapsed = self._rounds_elapsed[view.job_id]
                    for k, gpu_type in enumerate(types):
                        share = allocation_fractions[i, k]
                        if share <= 1e-6:
                            continue
                        received = self._received.get(
                            (view.job_id, gpu_type), 0.0)
                        deficit = share * elapsed - received
                        candidates.append((deficit, i, k))
                candidates.sort(reverse=True)

                plan = RoundPlan()
                occupancy: dict[int, int] = {}
                scheduled: set[int] = set()
                for deficit, i, k in candidates:
                    if i in scheduled or deficit <= 0:
                        continue
                    view = views[i]
                    gpu_type = types[k]
                    prev = previous.get(view.job_id)
                    preferred = prev.node_ids if prev is not None \
                        and prev.gpu_type == gpu_type else ()
                    allocation = pack_gpus_on_type(cluster, gpu_type,
                                                   counts[i], occupancy,
                                                   preferred)
                    if allocation is None:
                        continue
                    plan.allocations[view.job_id] = allocation
                    scheduled.add(i)
                    plan.estimates[view.job_id] = float(xput[i, k])
                    self._received[(view.job_id, gpu_type)] = \
                        self._received.get((view.job_id, gpu_type), 0.0) + 1.0
            self.record_estimates(views, plan)
            return timer.finish(plan)

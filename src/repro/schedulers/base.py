"""Scheduler interface shared by Sia and all baselines.

A scheduler sees, each round, one :class:`JobView` per active job — the
job's static description plus its runtime state and its Goodput Estimator —
and returns a :class:`RoundPlan`: concrete per-job allocations for the next
round.  Each scheduler owns its placement logic (Sia uses the Placer rules
of Section 3.1; Pollux packs virtual nodes; Gavel packs per-type), so the
simulator only validates and applies the plan.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation, Configuration
from repro.jobs.job import Job
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, PLAN_PHASES, Tracer

__all__ = ["JobView", "RoundPlan", "PlanTimer", "Scheduler", "PLAN_PHASES",
           "pack_gpus_on_type"]


@dataclass
class JobView:
    """Everything a scheduler may know about one active job."""

    job: Job
    #: the job's goodput estimator (JobPerfEstimator or HybridPerfEstimator).
    estimator: object
    current_config: Configuration | None
    #: seconds since the job first received resources (0 if never ran).
    age: float
    num_restarts: int
    #: effective samples completed so far.
    progress: float
    #: simulation timestamp when the job first received resources.
    first_start: float | None = None

    @property
    def job_id(self) -> str:
        return self.job.job_id

    @property
    def remaining_fraction(self) -> float:
        """Fraction of the job's work still to do, in [0, 1]."""
        done = min(self.progress, self.job.target_samples)
        return 1.0 - done / self.job.target_samples

    @property
    def is_running(self) -> bool:
        return self.current_config is not None


@dataclass
class RoundPlan:
    """One round's concrete resource plan."""

    #: job id -> allocation (jobs absent receive no resources this round).
    allocations: dict[str, Allocation] = field(default_factory=dict)
    #: wall-clock seconds the policy optimization took (Figure 9).
    solve_time: float = 0.0
    #: solver objective, when meaningful.
    objective: float | None = None
    #: solver backend that produced the plan ('' when not reported;
    #: 'carry' marks a carried-forward fallback plan).
    backend: str = ""
    #: True when the plan came from a degraded mode (fallback backend,
    #: open circuit breaker, or carry-forward).
    degraded: bool = False
    #: job id -> the goodput the scheduler believed the chosen allocation
    #: would deliver — the number its optimization ran on.  Feeds the
    #: goodput ledger (:mod:`repro.obs.ledger`); jobs without resources
    #: (and carried-forward plans) have no entry.
    estimates: dict[str, float] = field(default_factory=dict)

    def validate(self, cluster: Cluster) -> None:
        """Raise if the plan over-subscribes any node or mixes types."""
        used: dict[int, int] = {}
        sizes = {n.node_id: n.num_gpus for n in cluster.nodes}
        types = {n.node_id: n.gpu_type for n in cluster.nodes}
        for job_id, alloc in self.allocations.items():
            for node_id, count in alloc.gpus_per_node:
                if node_id not in sizes:
                    raise ValueError(f"{job_id}: unknown node {node_id}")
                if types[node_id] != alloc.gpu_type:
                    raise ValueError(
                        f"{job_id}: node {node_id} is {types[node_id]}, "
                        f"allocation says {alloc.gpu_type}")
                used[node_id] = used.get(node_id, 0) + count
        for node_id, count in used.items():
            if count > sizes[node_id]:
                raise ValueError(
                    f"node {node_id} over-subscribed: {count} > {sizes[node_id]}")


class PlanTimer:
    """Times one ``decide()`` call under a ``plan`` tracing span.

    Replaces the per-scheduler ``start = time.perf_counter() ...
    plan.solve_time = time.perf_counter() - start`` blocks: enter it around
    the planning body, open the standard :data:`PLAN_PHASES` child spans
    with :meth:`phase`, and return the produced plan through :meth:`finish`,
    which stamps ``RoundPlan.solve_time`` (backward compatible with the old
    inline timing).  With the default :data:`~repro.obs.tracer.NULL_TRACER`
    the spans are no-ops and only the solve-time stamp remains.
    """

    __slots__ = ("_tracer", "_span", "_start")

    def __init__(self, tracer: Tracer, scheduler_name: str, n_jobs: int):
        self._tracer = tracer
        self._span = tracer.span("plan", scheduler=scheduler_name,
                                 jobs=n_jobs)
        self._start = 0.0

    def __enter__(self) -> "PlanTimer":
        self._start = time.perf_counter()
        self._span.__enter__()
        return self

    def __exit__(self, *exc: object) -> bool:
        return self._span.__exit__(*exc)

    def phase(self, name: str, **attrs):
        """Open one of the standard phase spans (a child of ``plan``)."""
        return self._tracer.span(name, **attrs)

    def finish(self, plan: "RoundPlan") -> "RoundPlan":
        """Stamp ``plan.solve_time`` with the wall-clock spent planning."""
        plan.solve_time = time.perf_counter() - self._start
        return plan


class Scheduler(abc.ABC):
    """Base class for round-based cluster schedulers."""

    #: human-readable scheduler name for results tables.
    name: str = "base"
    #: observability tracer; the simulator injects the run's tracer here.
    #: The NULL_TRACER default keeps standalone ``decide()`` calls no-op.
    tracer: Tracer = NULL_TRACER
    #: shared metrics registry; the simulator injects the run's registry so
    #: resilience layers (ResilientScheduler, ResilientSolver) fold their
    #: counters into the per-round snapshots.  None keeps standalone
    #: ``decide()`` calls metric-free.
    metrics: MetricsRegistry | None = None
    #: seconds between scheduling rounds (60 for Sia/Pollux, 360 for the
    #: rigid baselines — Section 4.3).
    round_duration: float = 60.0
    #: rigid baselines assume the (job, GPU type) throughput matrix is known
    #: (Section 4.3 gives Gavel measured throughputs), so their estimators
    #: run in Oracle mode regardless of the experiment's profiling mode.
    oracle_estimators: bool = False
    #: per-GPU-type goodput discounts from the health layer (probation
    #: nodes); injected each round by the engine / ResilientScheduler and
    #: consumed by policies that support it (SiaPolicy).  ``None`` (or
    #: ``{}``) means no discount — the default for every standalone use.
    health_discounts: dict[str, float] | None = None

    @abc.abstractmethod
    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        """Choose allocations for the next round."""

    def planning(self, views: list[JobView]) -> PlanTimer:
        """The span-backed clock every ``decide()`` wraps its body in."""
        return PlanTimer(self.tracer, self.name, len(views))

    def record_estimates(self, views: list[JobView],
                         plan: RoundPlan) -> RoundPlan:
        """Decision-observability hook: stamp ``plan.estimates`` with the
        goodput each allocated job's estimator predicts for its chosen
        allocation — the number the scheduler's optimization ran on.

        Every ``decide()`` calls this before returning; schedulers whose
        optimization already produced per-job estimates (Sia's ILP) pre-fill
        ``plan.estimates`` and this hook only covers the gaps.  Estimator
        failures are skipped rather than raised — observability must never
        change scheduling outcomes.
        """
        for view in views:
            allocation = plan.allocations.get(view.job_id)
            if allocation is None or view.job_id in plan.estimates:
                continue
            try:
                value = float(view.estimator.goodput(
                    allocation.configuration()))
            except Exception:
                continue
            if value > 0:
                plan.estimates[view.job_id] = value
        return plan

    def make_estimator(self, job: Job, cluster: Cluster,
                       profiling_mode) -> object:
        """Create the goodput estimator this scheduler uses for ``job``.

        The default builds the Sia-style per-GPU-type estimator (hybrid jobs
        get their exact pre-profiled estimator); Pollux overrides this with
        its type-blind estimator.
        """
        from repro.core.types import ProfilingMode
        from repro.jobs.hybrid import HybridPerfEstimator
        from repro.jobs.inference import (BatchInferenceEstimator,
                                          LatencySLOEstimator)
        from repro.perf.estimator import JobPerfEstimator

        if job.is_hybrid:
            return HybridPerfEstimator(job.model_name, job.hybrid)
        mode = ProfilingMode.ORACLE if self.oracle_estimators else profiling_mode
        if job.workload == "batch_inference":
            return BatchInferenceEstimator(job.model_name, job.constraints(),
                                           cluster.gpu_types, mode)
        if job.workload == "latency_inference":
            return LatencySLOEstimator(job.model_name, job.latency_slo,
                                       cluster.gpu_types)
        return JobPerfEstimator(job.model_name, job.constraints(),
                                cluster.gpu_types, mode)

    def describe(self) -> str:
        return f"{self.name} (round={self.round_duration:.0f}s)"


def pack_gpus_on_type(cluster: Cluster, gpu_type: str, count: int,
                      occupancy: dict[int, int],
                      preferred_nodes: tuple[int, ...] = ()) -> Allocation | None:
    """Shared helper: pack ``count`` GPUs of a type onto nodes, first-fit
    decreasing free capacity, allowing node-spanning (used by baselines that
    do not follow Sia's placement rules).  ``occupancy`` maps node id ->
    GPUs already used and is updated in place on success."""
    if count < 1:
        raise ValueError("count must be >= 1")
    nodes = sorted(
        cluster.nodes_of_type(gpu_type),
        key=lambda n: (n.node_id not in preferred_nodes,
                       -(n.num_gpus - occupancy.get(n.node_id, 0)),
                       n.node_id))
    taken: dict[int, int] = {}
    remaining = count
    for node in nodes:
        free = node.num_gpus - occupancy.get(node.node_id, 0)
        if free <= 0:
            continue
        grab = min(free, remaining)
        taken[node.node_id] = grab
        remaining -= grab
        if remaining == 0:
            break
    if remaining > 0:
        return None
    for node_id, grab in taken.items():
        occupancy[node_id] = occupancy.get(node_id, 0) + grab
    return Allocation.build(gpu_type, taken)

"""Simple rigid-job baselines: FIFO and SRTF.

Not evaluated in the paper's headline tables, but useful as sanity
anchors — any scheduler in this repo should beat FIFO on average JCT under
contention — and as ablation baselines.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.types import Allocation, Configuration
from repro.schedulers.base import JobView, RoundPlan, Scheduler
from repro.schedulers.shockwave import place_rigid


class FIFOScheduler(Scheduler):
    """First-come-first-served, no preemption of running jobs."""

    name = "fifo"
    oracle_estimators = True

    def __init__(self, round_duration: float = 360.0):
        self.round_duration = round_duration

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        with self.planning(views) as timer:
            plan = RoundPlan()
            occupancy: dict[int, int] = {}
            with timer.phase("bootstrap"):
                # Running jobs keep their exact allocation.
                for view in views:
                    prev = previous.get(view.job_id)
                    if prev is not None:
                        for node_id, count in prev.gpus_per_node:
                            occupancy[node_id] = \
                                occupancy.get(node_id, 0) + count
                        plan.allocations[view.job_id] = prev
            with timer.phase("goodput_eval"):
                pass  # FIFO ignores rates; placement probes them lazily.
            with timer.phase("solve"):
                # Queued jobs start in submission order.
                queued = sorted(
                    (v for v in views if v.job_id not in plan.allocations),
                    key=lambda v: v.job.submit_time)
            with timer.phase("placement"):
                for view in queued:
                    allocation = place_rigid(view, cluster, occupancy, None)
                    if allocation is not None:
                        plan.allocations[view.job_id] = allocation
            self.record_estimates(views, plan)
            return timer.finish(plan)


class SRTFScheduler(Scheduler):
    """Shortest-remaining-time-first with preemption."""

    name = "srtf"
    oracle_estimators = True

    def __init__(self, round_duration: float = 360.0):
        self.round_duration = round_duration

    def _remaining_time(self, view: JobView, cluster: Cluster) -> float:
        count = max(1, view.job.effective_min_gpus)
        best = 0.0
        for gpu_type in cluster.gpu_types:
            if count > cluster.capacity(gpu_type):
                continue
            nodes = max(1, -(-count // cluster.max_node_size(gpu_type)))
            best = max(best, view.estimator.goodput(
                Configuration(nodes, count, gpu_type)))
        if best <= 0:
            return float("inf")
        return (view.job.target_samples - view.progress) / best

    def decide(self, views: list[JobView], cluster: Cluster,
               previous: dict[str, Allocation], now: float) -> RoundPlan:
        with self.planning(views) as timer:
            with timer.phase("bootstrap"):
                plan = RoundPlan()
                occupancy: dict[int, int] = {}
            with timer.phase("goodput_eval"):
                remaining = [self._remaining_time(v, cluster) for v in views]
            with timer.phase("solve"):
                ranked = [views[i] for i in
                          sorted(range(len(views)),
                                 key=lambda i: remaining[i])]
            with timer.phase("placement"):
                for view in ranked:
                    allocation = place_rigid(view, cluster, occupancy,
                                             previous.get(view.job_id))
                    if allocation is not None:
                        plan.allocations[view.job_id] = allocation
            self.record_estimates(views, plan)
            return timer.finish(plan)

"""Atomic file writes shared by every persistence layer.

Dependency-free on purpose: both :mod:`repro.io` (traces, results,
ledgers) and :mod:`repro.sim.checkpoint` (engine checkpoints) write through
these helpers, and putting them anywhere with heavier imports would create
a cycle between the two.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable


def atomic_write_bytes(path: str | Path, data: bytes, *,
                       crash_hook: Callable[[str], None] | None = None) -> None:
    """Write ``data`` to ``path`` atomically (write-tmp-then-rename).

    The bytes land in ``<path>.tmp`` first and are fsynced before an
    ``os.replace`` over the destination, so readers only ever see the old
    complete file or the new complete file — never a truncated mix.

    ``crash_hook`` is a fault-injection point for the chaos harness: it is
    called with a stage name (``pre_write``, ``mid_write``, ``pre_rename``,
    ``post_rename``) and may raise to simulate a crash at that point.  A
    crash before the rename leaves the destination untouched.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    if crash_hook is not None:
        crash_hook("pre_write")
    try:
        with open(tmp, "wb") as fh:
            half = len(data) // 2
            fh.write(data[:half])
            if crash_hook is not None:
                crash_hook("mid_write")
            fh.write(data[half:])
            fh.flush()
            os.fsync(fh.fileno())
        if crash_hook is not None:
            crash_hook("pre_rename")
        os.replace(tmp, path)
    finally:
        # A crash hook or write error may leave the partial tmp behind;
        # it must never shadow a real artifact.
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    if crash_hook is not None:
        crash_hook("post_rename")


def atomic_write_text(path: str | Path, text: str) -> None:
    """UTF-8 text flavour of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))

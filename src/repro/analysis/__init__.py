"""Experiment drivers and result rendering for the benchmark harness."""

from repro.analysis.experiments import (BENCH_SCALE, FULL_SCALE,
                                        ComparisonResult, ExperimentScale,
                                        adaptive_scheduler_set,
                                        compare_on_trace,
                                        rigid_scheduler_set, run_once,
                                        sample_trace)
from repro.analysis.explain import explain_job
from repro.analysis.render import (format_bars, format_series,
                                   format_table, improvement)
from repro.analysis.replay import (ReplayOutcome, ReplayOverrides,
                                   build_run_spec, fork_state, replay,
                                   simulator_from_spec)
from repro.analysis.report import (build_report, counterfactual_section,
                                   decision_digest_section)

__all__ = [
    "BENCH_SCALE", "FULL_SCALE", "ComparisonResult", "ExperimentScale",
    "adaptive_scheduler_set", "compare_on_trace", "rigid_scheduler_set",
    "run_once", "sample_trace",
    "format_bars", "format_series", "format_table", "improvement",
    "build_report", "counterfactual_section", "decision_digest_section",
    "explain_job",
    "ReplayOutcome", "ReplayOverrides", "build_run_spec", "fork_state",
    "replay", "simulator_from_spec",
]

"""Canonical experiment drivers shared by the benchmark harness.

Every table/figure bench reduces to: sample a trace, convert it per
scheduler (TunedJobs for rigid baselines), simulate, summarize.  These
drivers centralize that plumbing and the *scaled-down defaults* — the paper
runs 160-960-job traces for tens of simulated hours; the benches default to
a quarter-scale version (same contention profile: work and submission
window shrink together) so the whole harness completes in minutes.  Pass
``scale=FULL_SCALE`` to reproduce the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.core.types import ProfilingMode
from repro.jobs.job import Job
from repro.metrics.jct import SummaryMetrics, summarize
from repro.schedulers.base import Scheduler
from repro.schedulers.gavel import GavelScheduler
from repro.schedulers.pollux import PolluxScheduler
from repro.schedulers.shockwave import ShockwaveScheduler
from repro.schedulers.sia import SiaScheduler
from repro.schedulers.themis import ThemisScheduler
from repro.sim.engine import Simulator, SimulatorConfig
from repro.sim.telemetry import SimulationResult
from repro.workloads.generators import trace_by_name
from repro.workloads.trace import Trace
from repro.workloads.tuning import tuned_jobs


@dataclass(frozen=True)
class ExperimentScale:
    """How much to shrink the paper's workloads for one run."""

    #: multiplier on every job's work total.
    work: float = 0.25
    #: multiplier on the trace submission window.
    window: float = 0.25
    #: multiplier on the trace job count (1.0 keeps the paper's counts).
    jobs: float = 0.5
    #: simulation cap in hours.
    max_hours: float = 200.0


#: quarter-work, quarter-window, half-jobs: minutes per simulation.
BENCH_SCALE = ExperimentScale()
#: the paper's sizes (slow: tens of minutes per scheduler per trace).
FULL_SCALE = ExperimentScale(work=1.0, window=1.0, jobs=1.0, max_hours=2000.0)


def sample_trace(name: str, seed: int,
                 scale: ExperimentScale = BENCH_SCALE) -> Trace:
    """Sample one scaled trace of a workload family."""
    from repro.workloads.generators import SPECS
    spec = SPECS[name]
    num_jobs = max(4, int(round(
        spec.arrival_rate_per_hour * spec.window_hours * scale.jobs)))
    return trace_by_name(
        name, seed=seed, num_jobs=num_jobs,
        work_scale_factor=scale.work,
        window_hours=spec.window_hours * scale.window)


def run_once(cluster: Cluster, scheduler: Scheduler, jobs: list[Job], *,
             seed: int = 0, scale: ExperimentScale = BENCH_SCALE,
             profiling_mode: ProfilingMode = ProfilingMode.BOOTSTRAP,
             obs_noise: float = 0.0,
             rate_noise: float = 0.0) -> SimulationResult:
    """Simulate one (scheduler, job list) pair."""
    config = SimulatorConfig(profiling_mode=profiling_mode, seed=seed,
                             obs_noise=obs_noise, rate_noise=rate_noise,
                             max_hours=scale.max_hours)
    return Simulator(cluster, scheduler, jobs, config).run()


@dataclass
class ComparisonResult:
    """Results of one multi-scheduler comparison on one trace."""

    trace_name: str
    results: dict[str, SimulationResult] = field(default_factory=dict)
    jobs_used: dict[str, list[Job]] = field(default_factory=dict)

    def summaries(self) -> dict[str, SummaryMetrics]:
        return {name: summarize(r) for name, r in self.results.items()}

    def rows(self) -> list[dict]:
        return [s.as_row() for s in self.summaries().values()]


def adaptive_scheduler_set() -> dict[str, Scheduler]:
    """Sia + Pollux (run on the adaptive trace)."""
    return {"sia": SiaScheduler(), "pollux": PolluxScheduler()}


def rigid_scheduler_set(*, include_fairness: bool = False) -> dict[str, Scheduler]:
    """Gavel (+ Shockwave/Themis) — run on TunedJobs."""
    schedulers: dict[str, Scheduler] = {"gavel": GavelScheduler()}
    if include_fairness:
        schedulers["shockwave"] = ShockwaveScheduler()
        schedulers["themis"] = ThemisScheduler()
    return schedulers


def compare_on_trace(cluster: Cluster, trace: Trace, *,
                     adaptive: dict[str, Scheduler] | None = None,
                     rigid: dict[str, Scheduler] | None = None,
                     scale: ExperimentScale = BENCH_SCALE,
                     profiling_mode: ProfilingMode = ProfilingMode.BOOTSTRAP,
                     seed: int = 0) -> ComparisonResult:
    """Run adaptive schedulers on the raw trace and rigid schedulers on its
    TunedJobs conversion — the paper's comparison protocol (Section 4.3)."""
    if adaptive is None:
        adaptive = adaptive_scheduler_set()
    if rigid is None:
        rigid = rigid_scheduler_set()
    outcome = ComparisonResult(trace_name=trace.name)
    for name, scheduler in adaptive.items():
        outcome.results[name] = run_once(
            cluster, scheduler, trace.jobs, seed=seed, scale=scale,
            profiling_mode=profiling_mode)
        outcome.jobs_used[name] = trace.jobs
    if rigid:
        rigid_jobs = tuned_jobs(trace.jobs, cluster, seed=trace.seed)
        for name, scheduler in rigid.items():
            outcome.results[name] = run_once(
                cluster, scheduler, rigid_jobs, seed=seed, scale=scale,
                profiling_mode=profiling_mode)
            outcome.jobs_used[name] = rigid_jobs
    return outcome

"""Plain-text rendering of result tables and simple series plots.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(rows: Sequence[dict[str, Any]], *,
                 title: str | None = None) -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns = list(rows[0])
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def format_series(points: Sequence[tuple[float, float]], *,
                  x_label: str = "x", y_label: str = "y",
                  title: str | None = None, precision: int = 3) -> str:
    """Render an (x, y) series as aligned rows."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>12}  {y_label:>12}")
    for x, y in points:
        lines.append(f"{x:>12.{precision}f}  {y:>12.{precision}f}")
    return "\n".join(lines)


def format_bars(items: Sequence[tuple[str, float]], *,
                width: int = 40, title: str | None = None,
                precision: int = 3) -> str:
    """Render labeled values as a horizontal ASCII bar chart."""
    if not items:
        return "(no data)"
    label_width = max(len(label) for label, _ in items)
    peak = max(value for _, value in items)
    lines = []
    if title:
        lines.append(title)
    for label, value in items:
        length = 0 if peak <= 0 else int(round(width * value / peak))
        bar = "#" * max(length, 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.{precision}f}")
    return "\n".join(lines)


def improvement(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline`` in percent
    (positive means ``value`` is lower/better for cost-like metrics)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - value) / baseline

"""Human-readable decision timelines: *why* did a job run where it ran?

Renders one job's life through a simulation as text, from the decision-level
observability a run records (see :mod:`repro.obs.ledger` and
:mod:`repro.obs.audit`): per-round estimated vs. realized goodput with the
relative estimation error, and the classified allocation-change events
(admit, scale, migrate, preempt, fault restart, finish).  Works identically
on live :class:`~repro.sim.telemetry.SimulationResult` objects and on results
loaded from JSON via :mod:`repro.io`; the CLI exposes it as
``python -m repro explain run.json --job JOB``.
"""

from __future__ import annotations

from repro.obs.audit import events_for_job
from repro.obs.diff import RunDiff
from repro.obs.ledger import GoodputLedger, queue_wait_by_job
from repro.sim.telemetry import JobRecord, SimulationResult


def _hms(seconds: float) -> str:
    """Seconds -> compact ``h:mm:ss`` clock string."""
    total = int(round(seconds))
    return f"{total // 3600}:{total % 3600 // 60:02d}:{total % 60:02d}"


def _find_job(result: SimulationResult, job_id: str) -> JobRecord:
    for record in result.jobs:
        if record.job_id == job_id:
            return record
    known = ", ".join(sorted(r.job_id for r in result.jobs)) or "(none)"
    raise KeyError(f"unknown job {job_id!r}; result has jobs: {known}")


def _header_lines(result: SimulationResult, record: JobRecord,
                  queue_wait: float) -> list[str]:
    lines = [f"job {record.job_id} ({record.model_name}, "
             f"{record.adaptivity} adaptivity) under "
             f"{result.scheduler_name}",
             f"  submitted {_hms(record.submit_time)}"]
    if record.first_start is not None:
        lines.append(f"  first started {_hms(record.first_start)} "
                     f"(initial queue delay "
                     f"{_hms(record.first_start - record.submit_time)})")
    if record.finish_time is not None:
        lines.append(f"  finished {_hms(record.finish_time)} "
                     f"(JCT {_hms(record.jct())})")
    else:
        lines.append("  did not finish before the simulation ended")
    lines.append(f"  restarts: {record.num_restarts}, scheduler preemptions: "
                 f"{record.num_preemptions}, migrations: "
                 f"{record.num_migrations}, total queued: "
                 f"{_hms(queue_wait)}")
    return lines


def _round_rows(result: SimulationResult, ledger: GoodputLedger,
                job_id: str) -> list[dict[str, str]]:
    """One row per round the job appears in: allocation, estimate vs.
    realized goodput, relative error, and any allocation event."""
    by_round = {entry.round_index: entry for entry in ledger.for_job(job_id)}
    events: dict[int, list] = {}
    for event in events_for_job(result.allocation_events(), job_id):
        events.setdefault(event.round_index, []).append(event)
    rows: list[dict[str, str]] = []
    for index, rnd in enumerate(result.rounds):
        entry = by_round.get(index)
        round_events = events.get(index, [])
        alloc = rnd.allocations.get(job_id)
        if entry is None and not round_events and alloc is None:
            continue
        row = {"round": str(index), "t": _hms(rnd.time),
               "alloc": f"{alloc[1]}x {alloc[0]}" if alloc else "-",
               "est": "-", "realized": "-", "err%": "-", "event": ""}
        if entry is not None:
            if entry.estimated_goodput is not None:
                row["est"] = f"{entry.estimated_goodput:.1f}"
            if entry.realized_goodput is not None:
                row["realized"] = f"{entry.realized_goodput:.1f}"
            error = entry.relative_error
            if error is not None:
                row["err%"] = f"{100 * error:.1f}"
        if round_events:
            row["event"] = "; ".join(e.describe() for e in round_events)
        rows.append(row)
    return rows


def _format_rows(rows: list[dict[str, str]]) -> list[str]:
    if not rows:
        return ["  (this result has no per-round decision records; re-run "
                "the simulation, or save it with rounds included)"]
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(row[c]) for row in rows)) for c in columns}
    lines = ["  " + "  ".join(c.ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append("  " + "  ".join(row[c].ljust(widths[c])
                                      for c in columns).rstrip())
    return lines


def _round_detail(result: SimulationResult, ledger: GoodputLedger,
                  job_id: str, round_index: int) -> list[str]:
    if not 0 <= round_index < len(result.rounds):
        raise IndexError(f"round {round_index} out of range; result has "
                         f"{len(result.rounds)} rounds")
    rnd = result.rounds[round_index]
    lines = [f"round {round_index} at t={_hms(rnd.time)}: "
             f"{rnd.active_jobs} active, {rnd.running_jobs} running, "
             f"solve took {rnd.solve_time * 1000:.1f} ms"]
    alloc = rnd.allocations.get(job_id)
    lines.append(f"  allocation: {alloc[1]}x {alloc[0]}" if alloc
                 else f"  {job_id} held no GPUs this round")
    entry = next((e for e in ledger.for_job(job_id)
                  if e.round_index == round_index), None)
    if entry is not None:
        if entry.estimated_goodput is not None:
            lines.append(f"  scheduler expected {entry.estimated_goodput:.2f} "
                         "samples/s of goodput")
        if entry.realized_goodput is not None:
            realized = f"  executor delivered {entry.realized_goodput:.2f}"
            if entry.realized_throughput is not None:
                realized += (" goodput at "
                             f"{entry.realized_throughput:.2f} samples/s raw")
            error = entry.relative_error
            if error is not None:
                realized += f" (estimation error {100 * error:.1f}%)"
            lines.append(realized)
    for event in rnd.events:
        if event.job_id == job_id:
            lines.append(f"  event: {event.describe()}")
    for fault in rnd.fault_events:
        lines.append(f"  fault: {fault.kind} on {fault.target}"
                     + (f" ({fault.detail})" if fault.detail else ""))
    for event in rnd.health_events:
        lines.append(f"  health: {event.describe()}")
    for alert in rnd.alerts:
        lines.append(f"  alert: {alert.describe()}")
    return lines


def _fmt_alloc(alloc: "tuple[str, int] | None") -> str:
    return f"{alloc[1]}x {alloc[0]}" if alloc else "-"


def _counterfactual_lines(diff: RunDiff, job_id: str) -> list[str]:
    """Header block comparing this job's two futures (base vs fork)."""
    over = ", ".join(f"{k}={v}" for k, v in diff.overrides.items()) \
        or "none (identity fork)"
    lines = ["",
             f"  counterfactual: forked at round {diff.fork_round} under "
             f"{diff.fork_scheduler} (overrides: {over})"]
    if diff.identical:
        lines.append("  the fork reproduced this run exactly — the two "
                     "futures do not differ")
        return lines
    if diff.divergence is not None:
        d = diff.divergence
        lines.append(f"  futures diverged at round {d.round_index} "
                     f"(t={_hms(d.time)}): {d.reason}")
    vals = diff.job_deltas.get(job_id)
    if vals:
        base_jct, fork_jct = vals.get("base_jct"), vals.get("fork_jct")
        if base_jct is not None or fork_jct is not None:
            base_s = _hms(base_jct * 3600) if base_jct is not None \
                else "did not finish"
            fork_s = _hms(fork_jct * 3600) if fork_jct is not None \
                else "did not finish"
            lines.append(f"  JCT: {base_s} (base) vs {fork_s} (fork)")
        base_w, fork_w = vals.get("base_queue_wait"), \
            vals.get("fork_queue_wait")
        if base_w is not None and fork_w is not None \
                and (base_w or fork_w):
            lines.append(f"  queued: {_hms(base_w)} (base) vs "
                         f"{_hms(fork_w)} (fork)")
    return lines


def _annotate_counterfactual(rows: list[dict[str, str]],
                             result: SimulationResult, diff: RunDiff,
                             job_id: str) -> list[dict[str, str]]:
    """Add a ``fork`` column to the timeline: what the alternate future
    gave this job wherever it differs ('=' where both futures agree, '.'
    on shared history before the fork round).  Rounds only the fork ran
    (a longer alternate future) are appended as extra rows."""
    changes = diff.job_changes(job_id)
    for row in rows:
        index = int(row["round"])
        if index in changes:
            change = changes[index]
            row["fork"] = _fmt_alloc(change.fork) \
                + (f" [{change.kind}]" if change.kind else "")
        elif index < diff.fork_round:
            row["fork"] = "."
        else:
            row["fork"] = "="
    for index in sorted(changes):
        if index < len(result.rounds):
            continue
        rnd = next((r for r in diff.round_deltas
                    if r.round_index == index), None)
        change = changes[index]
        rows.append({"round": str(index),
                     "t": _hms(rnd.time) if rnd else "-",
                     "alloc": "-", "est": "-", "realized": "-",
                     "err%": "-", "event": "(fork only)",
                     "fork": _fmt_alloc(change.fork)
                     + (f" [{change.kind}]" if change.kind else "")})
    return rows


def explain_job(result: SimulationResult, job_id: str,
                round_index: int | None = None,
                counterfactual: RunDiff | None = None) -> str:
    """Render a job's decision timeline (or one round of it) as text.

    ``counterfactual`` annotates the timeline with the alternate future
    from a :class:`~repro.obs.diff.RunDiff` (``repro explain
    --counterfactual diff.json``): a ``fork`` column showing where the two
    futures differ, plus a base-vs-fork JCT/queue-wait header.

    Raises ``KeyError`` for an unknown job and ``IndexError`` for an
    out-of-range round, so the CLI can turn both into clean errors.
    """
    record = _find_job(result, job_id)
    ledger = GoodputLedger.from_result(result)
    queue_wait = queue_wait_by_job(result).get(job_id, 0.0)
    lines = _header_lines(result, record, queue_wait)
    if counterfactual is not None:
        lines.extend(_counterfactual_lines(counterfactual, job_id))
    lines.append("")
    if round_index is not None:
        lines.extend(_round_detail(result, ledger, job_id, round_index))
        return "\n".join(lines)
    rows = _round_rows(result, ledger, job_id)
    if counterfactual is not None:
        rows = _annotate_counterfactual(rows, result, counterfactual,
                                        job_id)
    if not rows and record.first_start is None:
        # Censored before admission: there is no timeline to print — say
        # so cleanly instead of showing an empty/garbled table.
        reason = "the simulation ended while it was still queued" \
            if record.submit_time <= result.end_time \
            else "it was submitted after the simulation ended"
        lines.append(f"  queued, never admitted: {reason}; no allocation "
                     "rounds to show")
        return "\n".join(lines)
    lines.extend(_format_rows(rows))
    errors = ledger.error_series(job_id)
    if len(errors) >= 2:
        first, last = errors[0][1], errors[-1][1]
        lines.append("")
        lines.append(f"  estimation error went {100 * first:.1f}% -> "
                     f"{100 * last:.1f}% over the job's lifetime")
    return "\n".join(lines)

"""Counterfactual replay: fork a recorded run at round N, diff the futures.

The question this module answers is the one the ROADMAP names for the
observability stack: *what would this exact run have looked like if, at
round N, we had used a different policy, solver backend, fault seed,
cluster size, or health posture?*  It composes three existing subsystems:

* the checkpoint machinery (:mod:`repro.sim.checkpoint`): the fork state is
  a :class:`CheckpointState` — either recomputed deterministically from the
  run's recorded spec via :meth:`Simulator.run_to_round`, or restored from
  an on-disk checkpoint directory and advanced to the fork round;
* the resume-equivalence oracle (:func:`repro.sim.chaos.diff_results`):
  a fork with *zero* overrides must reproduce the base run bit-identically
  (wall-clock telemetry excepted) — any mismatch means the replay itself is
  broken, not the counterfactual;
* the decision ledger and audit taxonomy (:mod:`repro.obs`): the two
  futures are aligned round by round into a :class:`repro.obs.diff.RunDiff`
  with classified allocation deltas, the divergence point, and
  goodput/JCT/queue-wait/fault-recovery metric deltas.

Replay needs the run's construction recipe, so results saved by this build
carry a ``run_spec`` (see :func:`build_run_spec`); results saved before
that cannot be forked and say so explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import io
from repro.cluster import presets
from repro.cluster.cluster import Cluster
from repro.core import fork as forklib
from repro.core.health import HealthConfig
from repro.core.types import ProfilingMode
from repro.metrics.jct import percentile
from repro.obs.diff import (MetricDelta, RunDiff, aligned_ledger_deltas,
                            compare_runs, fault_recovery_seconds)
from repro.obs.ledger import GoodputLedger, queue_wait_by_job
from repro.sim import checkpoint as ckpt
from repro.sim.chaos import diff_results
from repro.sim.checkpoint import CheckpointState
from repro.sim.engine import Simulator, SimulatorConfig
from repro.sim.telemetry import SimulationResult

#: how many strict-oracle mismatch lines a RunDiff keeps (they are
#: diagnostics for broken identity, not the decision diff itself).
MAX_MISMATCHES = 200


@dataclass(frozen=True)
class ReplayOverrides:
    """What the forked future does differently.  All-None = identity fork."""

    #: scheduler to swap in at the fork round (e.g. 'gavel').
    policy: str | None = None
    #: ILP backend to rebind on a Sia scheduler ('milp'/'exact'/'greedy').
    solver_backend: str | None = None
    #: reseed every fault model ("different luck" from the fork on).
    fault_seed: int | None = None
    #: capacity edit spec, e.g. '+64xa100' or '-8xt4,+4xrtx' (GPUs).
    cluster_delta: str | None = None
    #: force the gray-failure defense 'on' or 'off' from the fork round.
    health: str | None = None

    def __post_init__(self) -> None:
        if self.health not in (None, "on", "off"):
            raise ValueError(
                f"health override must be 'on' or 'off', got {self.health!r}")

    @property
    def empty(self) -> bool:
        return (self.policy is None and self.solver_backend is None
                and self.fault_seed is None and self.cluster_delta is None
                and self.health is None)

    def as_dict(self) -> dict[str, str]:
        """Compact {name: value} of only the overrides actually set."""
        out: dict[str, str] = {}
        if self.policy is not None:
            out["policy"] = self.policy
        if self.solver_backend is not None:
            out["solver_backend"] = self.solver_backend
        if self.fault_seed is not None:
            out["fault_seed"] = str(self.fault_seed)
        if self.cluster_delta is not None:
            out["cluster_delta"] = self.cluster_delta
        if self.health is not None:
            out["health"] = self.health
        return out


@dataclass
class ReplayOutcome:
    """A finished counterfactual: the artifact plus both futures."""

    diff: RunDiff
    base: SimulationResult
    fork: SimulationResult


# -- run specs -----------------------------------------------------------------

def build_run_spec(*, scheduler: str, cluster: str, jobs: list,
                   seed: int = 0, profiling_mode: str = "bootstrap",
                   max_hours: float = 1000.0,
                   node_failure_rate: float = 0.0,
                   resilient: bool = False, invariants: str = "off",
                   health: bool = False,
                   scheduler_options: dict | None = None,
                   fault_options: dict | None = None) -> dict[str, Any]:
    """The construction recipe embedded in saved results (``run_spec``).

    ``jobs`` is the *exact* job list the simulator ran — recorded after
    rigid-scheduler tuning, so replaying a gavel run does not re-tune —
    serialized with :func:`repro.io.job_to_dict`.  ``fault_options`` takes
    the knob names of :data:`repro.core.fork.FAULT_OPTION_DEFAULTS`;
    unknown keys fail fast here rather than at fork time.
    """
    options = dict(fault_options or {})
    unknown = set(options) - set(forklib.FAULT_OPTION_DEFAULTS)
    if unknown:
        raise ValueError(f"unknown fault options: {sorted(unknown)}")
    return {
        "scheduler": scheduler,
        "cluster": cluster,
        "seed": seed,
        "profiling_mode": profiling_mode,
        "max_hours": max_hours,
        "node_failure_rate": node_failure_rate,
        "resilient": resilient,
        "invariants": invariants,
        "health": health,
        "scheduler_options": dict(scheduler_options or {}),
        "fault_options": options,
        "jobs": [io.job_to_dict(job) for job in jobs],
    }


def simulator_from_spec(spec: dict[str, Any], *,
                        cluster: Cluster | None = None,
                        health: bool | None = None) -> Simulator:
    """Rebuild the recorded run's simulator from its ``run_spec``.

    ``cluster`` substitutes a (delta-edited) cluster for the recorded
    preset; ``health`` forces the gray-failure defense on/off regardless of
    what the base run used (None keeps the recorded posture).
    """
    if not spec:
        raise ValueError(
            "result carries no run_spec — it was saved by an older build; "
            "re-run `repro run --out ...` to record a forkable result")
    if cluster is None:
        cluster = presets.by_name(spec["cluster"])
    scheduler = forklib.make_scheduler(
        spec["scheduler"], resilient=spec.get("resilient", False),
        **spec.get("scheduler_options", {}))
    jobs = [io.job_from_dict(data) for data in spec["jobs"]]
    health_on = spec.get("health", False) if health is None else health
    config = SimulatorConfig(
        profiling_mode=ProfilingMode(spec.get("profiling_mode", "bootstrap")),
        seed=spec.get("seed", 0),
        max_hours=spec.get("max_hours", 1000.0),
        node_failure_rate=spec.get("node_failure_rate", 0.0),
        fault_models=forklib.make_fault_models(
            spec.get("fault_options") or None),
        resilient=spec.get("resilient", False),
        invariants=spec.get("invariants", "off"),
        health=HealthConfig() if health_on else None)
    return Simulator(cluster, scheduler, jobs, config)


# -- fork-state acquisition ----------------------------------------------------

def _best_checkpoint(directory: str | Path,
                     at_round: int) -> CheckpointState | None:
    """Newest valid on-disk checkpoint at or before the fork round (None
    when the directory has none usable — the fork then recomputes from
    round 0, which is slower but equivalent)."""
    best: CheckpointState | None = None
    for path in ckpt.list_checkpoints(directory):
        try:
            state = ckpt.read_checkpoint(path)
        except ckpt.CheckpointError:
            continue
        if state.round_index <= at_round and (
                best is None or state.round_index > best.round_index):
            best = state
    return best


def fork_state(spec: dict[str, Any], at_round: int, *,
               checkpoint_dir: str | Path | None = None) -> CheckpointState:
    """The engine state at exactly ``at_round`` rounds, ready to fork.

    Recomputed deterministically from the spec, fast-forwarded from the
    newest usable checkpoint in ``checkpoint_dir`` when given.  The
    returned state is an independent deep copy (via the checkpoint
    serializer), so mutating it for one fork cannot contaminate another.
    """
    simulator = simulator_from_spec(spec)
    resume = None
    if checkpoint_dir is not None:
        resume = _best_checkpoint(checkpoint_dir, at_round)
    state = simulator.run_to_round(at_round, resume_from=resume)
    return ckpt.loads_state(ckpt.dumps_state(state))


# -- override application ------------------------------------------------------

def _evict_jobs_on(state: CheckpointState,
                   removed: frozenset[int]) -> None:
    """Jobs holding GPUs on removed nodes lose them at the fork boundary
    (classified as a fault-caused restart when they next get resources)."""
    for rt in state.active.values():
        alloc = rt.allocation
        if alloc is None or not (set(alloc.node_ids) & removed):
            continue
        rt.allocation = None
        rt.restart_remaining = 0.0
        rt.num_restarts += 1
        rt.lost_to_fault = True


def _swap_policy(state: CheckpointState, policy: str,
                 spec: dict[str, Any]) -> None:
    """Replace the scheduler in a restored state, preserving cadence.

    Pollux swaps (either direction) are rejected: its estimators speak a
    different interface (``best_plan`` vs ``goodput``), and every admitted
    job already carries an estimator built by the base scheduler.
    """
    base_name = spec["scheduler"]
    if ("pollux" in (policy, base_name)) and policy != base_name:
        raise ValueError(
            f"cannot swap {base_name!r} -> {policy!r} mid-run: pollux "
            "estimators expose a different interface than the goodput "
            "estimators already attached to admitted jobs")
    round_duration = state.scheduler.round_duration
    scheduler = forklib.make_scheduler(
        policy, resilient=spec.get("resilient", False),
        **{**spec.get("scheduler_options", {}),
           "round_duration": round_duration})
    # Keep the base run's round cadence even for schedulers whose ctor
    # fixes their own (gavel et al. default to 360s): the two futures must
    # tick on the same clock for round-by-round alignment.
    forklib.unwrap_scheduler(scheduler).round_duration = round_duration
    scheduler.round_duration = round_duration
    state.scheduler = scheduler
    state.scheduler_name = scheduler.name
    state.result.scheduler_name = scheduler.name


def apply_overrides(state: CheckpointState, overrides: ReplayOverrides,
                    spec: dict[str, Any]) -> Cluster | None:
    """Mutate a fork state per the overrides; returns the delta-edited
    cluster when one was requested (None = keep the recorded preset)."""
    cluster: Cluster | None = None
    if overrides.cluster_delta is not None:
        base_cluster = presets.by_name(spec["cluster"])
        deltas = forklib.parse_cluster_delta(overrides.cluster_delta)
        cluster, removed = forklib.apply_cluster_delta(base_cluster, deltas)
        # The restore-time structural check must accept the edited cluster.
        state.cluster_signature = ckpt.cluster_signature(cluster)
        if removed:
            _evict_jobs_on(state, removed)
    if overrides.policy is not None:
        _swap_policy(state, overrides.policy, spec)
    if overrides.solver_backend is not None:
        forklib.rebind_solver(state.scheduler, overrides.solver_backend)
    if overrides.fault_seed is not None:
        forklib.reseed_fault_models(state.fault_models,
                                    overrides.fault_seed)
    return cluster


# -- metric deltas -------------------------------------------------------------

def _jct_hours(result: SimulationResult, record: Any) -> float | None:
    if record.finish_time is None:
        return None
    return record.jct() / 3600.0


def _metric_deltas(base: SimulationResult, fork: SimulationResult,
                   ) -> tuple[list[MetricDelta],
                              dict[str, dict[str, float | None]]]:
    """The headline outcome deltas plus per-job JCT/queue-wait pairs."""
    base_waits = queue_wait_by_job(base)
    fork_waits = queue_wait_by_job(fork)
    ledger_axis = aligned_ledger_deltas(GoodputLedger.from_result(base),
                                        GoodputLedger.from_result(fork))
    base_goodput = (sum(b for _, b, _ in ledger_axis) / len(ledger_axis)
                    if ledger_axis else 0.0)
    fork_goodput = (sum(f for _, _, f in ledger_axis) / len(ledger_axis)
                    if ledger_axis else 0.0)

    def _p99_wait(waits: dict[str, float]) -> float:
        values = list(waits.values())
        return percentile(values, 99) / 3600.0 if values else 0.0

    def _avg_jct(result: SimulationResult) -> float:
        jcts = result.jcts_hours()
        return sum(jcts) / len(jcts) if jcts else 0.0

    def _p99_jct(result: SimulationResult) -> float:
        jcts = result.jcts_hours()
        return percentile(jcts, 99) if jcts else 0.0

    metrics = [
        MetricDelta("completed_jobs",
                    float(len(base.completed_jobs)),
                    float(len(fork.completed_jobs))),
        MetricDelta("avg_jct_hours", _avg_jct(base), _avg_jct(fork)),
        MetricDelta("p99_jct_hours", _p99_jct(base), _p99_jct(fork)),
        MetricDelta("makespan_hours", base.makespan_hours,
                    fork.makespan_hours),
        MetricDelta("p99_queue_wait_hours", _p99_wait(base_waits),
                    _p99_wait(fork_waits)),
        MetricDelta("avg_round_goodput", base_goodput, fork_goodput),
        MetricDelta("migrations",
                    float(sum(j.num_migrations for j in base.jobs)),
                    float(sum(j.num_migrations for j in fork.jobs))),
        MetricDelta("preemptions",
                    float(sum(j.num_preemptions for j in base.jobs)),
                    float(sum(j.num_preemptions for j in fork.jobs))),
        MetricDelta("restarts",
                    float(sum(j.num_restarts for j in base.jobs)),
                    float(sum(j.num_restarts for j in fork.jobs))),
        MetricDelta("fault_recovery_hours",
                    fault_recovery_seconds(base.allocation_events()) / 3600.0,
                    fault_recovery_seconds(fork.allocation_events()) / 3600.0),
    ]

    job_deltas: dict[str, dict[str, float | None]] = {}
    base_jobs = {j.job_id: j for j in base.jobs}
    fork_jobs = {j.job_id: j for j in fork.jobs}
    for job_id in sorted(set(base_jobs) | set(fork_jobs)):
        base_rec, fork_rec = base_jobs.get(job_id), fork_jobs.get(job_id)
        job_deltas[job_id] = {
            "base_jct": _jct_hours(base, base_rec) if base_rec else None,
            "fork_jct": _jct_hours(fork, fork_rec) if fork_rec else None,
            "base_queue_wait": base_waits.get(job_id),
            "fork_queue_wait": fork_waits.get(job_id),
        }
    return metrics, job_deltas


# -- the engine ----------------------------------------------------------------

def replay(base: SimulationResult, at_round: int,
           overrides: ReplayOverrides | None = None, *,
           checkpoint_dir: str | Path | None = None,
           spec: dict[str, Any] | None = None) -> ReplayOutcome:
    """Fork ``base`` at ``at_round``, run the alternate future, diff them.

    ``base`` must carry a ``run_spec`` (results saved by this build do), or
    one must be passed explicitly.  With zero overrides the fork replays
    the base run exactly and ``outcome.diff.identical`` is True — that is
    the correctness oracle, checked through the same strict comparator the
    checkpoint-resume tests use.
    """
    overrides = overrides or ReplayOverrides()
    spec = spec if spec is not None else getattr(base, "run_spec", None)
    if not spec:
        raise ValueError(
            "result carries no run_spec — it was saved by an older build; "
            "re-run `repro run --out ...` to record a forkable result, or "
            "pass spec= explicitly")
    if at_round >= len(base.rounds):
        raise ValueError(
            f"fork round {at_round} is past the base run "
            f"({len(base.rounds)} rounds recorded)")

    state = fork_state(spec, at_round, checkpoint_dir=checkpoint_dir)
    cluster = apply_overrides(state, overrides, spec)
    health = {"on": True, "off": False, None: None}[overrides.health]
    simulator = simulator_from_spec(spec, cluster=cluster, health=health)
    fork_result = simulator.run(resume_from=state)

    mismatches = diff_results(base, fork_result)
    round_deltas, divergence = compare_runs(base, fork_result)
    metrics, job_deltas = _metric_deltas(base, fork_result)
    diff = RunDiff(
        fork_round=at_round,
        overrides=overrides.as_dict(),
        base_scheduler=base.scheduler_name,
        fork_scheduler=fork_result.scheduler_name,
        base_rounds=len(base.rounds),
        fork_rounds=len(fork_result.rounds),
        mismatches=mismatches[:MAX_MISMATCHES],
        divergence=divergence,
        round_deltas=round_deltas,
        metrics=metrics,
        job_deltas=job_deltas)
    return ReplayOutcome(diff=diff, base=base, fork=fork_result)

"""Markdown report generation from simulation results.

Turns one or more :class:`~repro.sim.telemetry.SimulationResult` objects
(live, or loaded from JSON via :mod:`repro.io`) into a self-contained
markdown report: the Table 3/4-style comparison, per-model GPU-hours
(Figure 6 view), JCT distribution, utilization, and — when the jobs are
available — finish-time fairness.  The CLI exposes this as
``python -m repro report result1.json result2.json``.
"""

from __future__ import annotations

from repro.analysis.render import format_bars
from repro.cluster.cluster import Cluster
from repro.jobs.job import Job
from repro.metrics.fairness import fairness_metrics
from repro.metrics.jct import gpu_hours_by_model, percentile, summarize
from repro.metrics.utilization import average_utilization
from repro.obs.audit import (allocation_persistence, event_counts,
                             migration_flows)
from repro.obs.diff import RunDiff
from repro.obs.export import run_diff_markdown
from repro.obs.ledger import GoodputLedger, queue_wait_by_job
from repro.sim.telemetry import SimulationResult


def _markdown_table(rows: list[dict]) -> str:
    if not rows:
        return "(no data)\n"
    columns = list(rows[0])
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns)
                     + " |")
    return "\n".join(lines) + "\n"


def comparison_section(results: list[SimulationResult]) -> str:
    rows = [summarize(result).as_row() for result in results]
    return "## Scheduler comparison\n\n" + _markdown_table(rows)


def jct_section(result: SimulationResult) -> str:
    jcts = result.jcts_hours()
    stats = [
        ("p50", percentile(jcts, 50)),
        ("p90", percentile(jcts, 90)),
        ("p99", percentile(jcts, 99)),
        ("max", max(jcts)),
    ]
    chart = format_bars([(name, value) for name, value in stats],
                        title=f"JCT distribution, hours "
                              f"({result.scheduler_name})")
    return f"```\n{chart}\n```\n"


def gpu_hours_section(result: SimulationResult) -> str:
    by_model = gpu_hours_by_model(result)
    rows = []
    for model, hours in sorted(by_model.items()):
        row = {"model": model}
        for gpu_type, value in sorted(hours.items()):
            row[gpu_type] = round(value, 2)
        rows.append(row)
    # column set can differ per model; normalize
    columns = {"model"}
    for row in rows:
        columns |= set(row)
    ordered = ["model"] + sorted(columns - {"model"})
    rows = [{c: row.get(c, 0.0) for c in ordered} for row in rows]
    return (f"### GPU-hours per job by model ({result.scheduler_name})\n\n"
            + _markdown_table(rows))


def fairness_section(result: SimulationResult, jobs: list[Job],
                     cluster: Cluster) -> str:
    metrics = fairness_metrics(result, jobs, cluster)
    rows = [{
        "scheduler": result.scheduler_name,
        "worst_ftf": round(metrics.worst_ftf, 2),
        "unfair_fraction": round(metrics.unfair_fraction, 3),
    }]
    return "### Finish-time fairness\n\n" + _markdown_table(rows)


def decision_digest_section(result: SimulationResult) -> str:
    """Decision-level observability summary: allocation events by kind,
    per-GPU-type migration flows, early-vs-late goodput-estimation error,
    and the jobs that queued longest.  Empty string when the result carries
    no per-round records (e.g. saved with ``include_rounds=False``)."""
    events = result.allocation_events()
    ledger = GoodputLedger.from_result(result)
    if not events and not ledger.entries:
        return ""
    parts = [f"### Decision digest ({result.scheduler_name})\n"]
    counts = event_counts(events)
    if counts:
        parts.append(_markdown_table([
            {"event": kind, "count": counts[kind]}
            for kind in sorted(counts, key=lambda k: -counts[k])]))
    flows = migration_flows(events)
    if flows:
        parts.append("Migration flows between GPU types:\n")
        parts.append(_markdown_table([
            {"from": src, "to": dst, "migrations": count}
            for (src, dst), count in sorted(flows.items())]))
    persistence = allocation_persistence(result.rounds)
    if persistence is not None:
        parts.append(f"Allocation persistence: {100 * persistence:.1f}% of "
                     "job-allocation pairs carried unchanged into the next "
                     "round (the fraction the solver warm-start/reuse tier "
                     "can exploit).\n")
    medians = ledger.convergence_medians(num_windows=2)
    if len(medians) == 2:
        early, late = medians
        trend = "shrank" if late <= early else "**grew**"
        parts.append(f"Median goodput-estimation error {trend} from "
                     f"{100 * early:.1f}% (early rounds) to "
                     f"{100 * late:.1f}% (late rounds).\n")
    waits = [(jid, wait) for jid, wait in queue_wait_by_job(result).items()
             if wait > 0]
    if waits:
        waits.sort(key=lambda item: -item[1])
        parts.append("Longest queue waits:\n")
        parts.append(_markdown_table([
            {"job": jid, "queued_hours": round(wait / 3600, 2)}
            for jid, wait in waits[:5]]))
    return "\n".join(parts)


def slo_section(result: SimulationResult) -> str:
    """SLO/alert summary: fired alerts by rule plus the first few alert
    lines with their causal context.  Empty string when the run was not
    SLO-observed (no alerts recorded or persisted)."""
    counts = result.alert_counts()
    if not counts:
        return ""
    parts = [f"### SLO alerts ({result.scheduler_name})\n"]
    parts.append(_markdown_table([
        {"rule": rule, "alerts": counts[rule]}
        for rule in sorted(counts, key=lambda r: -counts[r])]))
    timeline = result.alerts_timeline()
    if timeline:
        shown = timeline[:8]
        parts.append(f"{len(timeline)} alert(s)"
                     + (f" (first {len(shown)} shown)"
                        if len(shown) < len(timeline) else "") + ":\n")
        for index, alert in shown:
            parts.append(f"- round {index} (t={alert.time:.0f}s): "
                         f"{alert.describe()}")
        parts.append("")
    return "\n".join(parts)


def counterfactual_section(diff: RunDiff) -> str:
    """Decision-diff section for a counterfactual replay (``repro report
    ... --diff diff.json``): the rendered RunDiff — overrides, divergence
    point, outcome deltas, and per-round allocation changes."""
    return run_diff_markdown(diff)


def build_report(results: list[SimulationResult], *,
                 title: str = "Simulation report",
                 jobs: list[Job] | None = None,
                 cluster: Cluster | None = None,
                 diffs: list[RunDiff] | None = None) -> str:
    """Assemble the full markdown report.

    ``jobs``/``cluster`` are optional: fairness needs the original job
    objects and cluster, which saved results do not carry.  ``diffs``
    appends one counterfactual decision-diff section per
    :class:`~repro.obs.diff.RunDiff` (from ``repro replay --diff-out``).
    """
    if not results:
        raise ValueError("need at least one result")
    parts = [f"# {title}\n",
             f"Cluster: {results[0].cluster_description}\n",
             comparison_section(results)]
    for result in results:
        parts.append(f"\n## {result.scheduler_name}\n")
        parts.append(jct_section(result))
        parts.append(gpu_hours_section(result))
        if cluster is not None:
            utilization = average_utilization(result, cluster)
            parts.append(f"Average GPU occupancy: "
                         f"{100 * utilization:.1f}%\n")
        if jobs is not None and cluster is not None:
            parts.append(fairness_section(result, jobs, cluster))
        digest = decision_digest_section(result)
        if digest:
            parts.append(digest)
        alerts = slo_section(result)
        if alerts:
            parts.append(alerts)
        if result.censored:
            parts.append(f"**Warning:** {result.censored} job(s) did not "
                         "finish before the simulation cap.\n")
        if result.node_failures:
            parts.append(f"Worker failures injected: "
                         f"{result.node_failures}\n")
    for diff in diffs or []:
        parts.append("")
        parts.append(counterfactual_section(diff))
    return "\n".join(parts)

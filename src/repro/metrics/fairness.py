"""Finish-time fairness (Section 5.5).

Mahajan et al. define the FTF ratio of a job as its shared-cluster JCT over
its JCT in an isolated cluster of ``N_gpus / N_avg`` GPUs, where ``N_avg``
is the average contention the job observed.  The paper extends this to
heterogeneous clusters (Equation 6)::

    rho = sum_g P(G = g) * rho_g

where ``P(G = g)`` is the fraction of cluster GPUs of type ``g`` and
``rho_g`` the homogeneous FTF ratio computed against an isolated cluster of
``N_g / N_avg`` GPUs of type ``g``.  Types a job's model cannot run on at
all (e.g. a 2.8B model on 16 GB GPUs) are excluded and the weights
renormalized — the isolated baseline must be a cluster the job could
actually use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.jobs.job import Job, isolated_runtime
from repro.sim.telemetry import JobRecord, SimulationResult


def isolated_jct(job: Job, gpu_type: str, cluster: Cluster,
                 avg_contention: float) -> float:
    """JCT of the job alone on its fair share of one GPU type.

    The fair-sized isolated cluster has ``N_g / N_avg`` GPUs; the job uses
    at most its declared maximum of them.  Returns ``inf`` if the model
    cannot run on this GPU type.
    """
    capacity = cluster.capacity(gpu_type)
    fair = max(1, int(capacity / max(1.0, avg_contention)))
    count = min(fair, job.effective_max_gpus)
    node_size = cluster.max_node_size(gpu_type)
    nodes = max(1, -(-count // node_size))
    return isolated_runtime(job, gpu_type, count, nodes)


def ftf_ratio(job: Job, record: JobRecord, cluster: Cluster,
              horizon: float) -> float:
    """Heterogeneous finish-time-fairness ratio (Equation 6) for one job."""
    shared_jct = record.jct(horizon)
    total = cluster.total_gpus
    weighted = 0.0
    weight_sum = 0.0
    for gpu_type in cluster.gpu_types:
        baseline = isolated_jct(job, gpu_type, cluster,
                                max(1.0, record.avg_contention))
        if math.isinf(baseline):
            continue  # model cannot run on this type; exclude and renormalize
        weight = cluster.capacity(gpu_type) / total
        weighted += weight * (shared_jct / baseline)
        weight_sum += weight
    if weight_sum == 0.0:
        raise ValueError(
            f"job {job.job_id}: no GPU type can run model {job.model_name}")
    return weighted / weight_sum


@dataclass
class FairnessMetrics:
    """The three fairness quantities of Section 5.5."""

    scheduler: str
    worst_ftf: float
    unfair_fraction: float
    ratios: list[float]

    def cdf(self) -> list[tuple[float, float]]:
        ordered = sorted(self.ratios)
        n = len(ordered)
        return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def fairness_metrics(result: SimulationResult, jobs: list[Job],
                     cluster: Cluster) -> FairnessMetrics:
    """Worst FTF ratio, unfair job fraction (rho > 1), and the full CDF."""
    by_id = {job.job_id: job for job in jobs}
    ratios: list[float] = []
    for record in result.jobs:
        job = by_id.get(record.job_id)
        if job is None:
            raise KeyError(f"result has unknown job {record.job_id!r}")
        ratios.append(ftf_ratio(job, record, cluster, result.end_time))
    if not ratios:
        raise ValueError("no jobs to evaluate")
    unfair = sum(1 for r in ratios if r > 1.0) / len(ratios)
    return FairnessMetrics(scheduler=result.scheduler_name,
                           worst_ftf=max(ratios),
                           unfair_fraction=unfair,
                           ratios=ratios)

"""Cluster-utilization metrics: GPU occupancy over time, per-type usage."""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.sim.telemetry import SimulationResult


def average_utilization(result: SimulationResult, cluster: Cluster) -> float:
    """Fraction of cluster GPUs held by jobs, averaged over non-idle rounds."""
    total = cluster.total_gpus
    busy_rounds = [r for r in result.rounds if r.active_jobs > 0]
    if not busy_rounds:
        return 0.0
    used = [sum(r.gpus_used.values()) / total for r in busy_rounds]
    return sum(used) / len(used)


def utilization_by_type(result: SimulationResult,
                        cluster: Cluster) -> dict[str, float]:
    """Per-GPU-type average occupancy over non-idle rounds."""
    busy_rounds = [r for r in result.rounds if r.active_jobs > 0]
    out: dict[str, float] = {}
    for gpu_type in cluster.gpu_types:
        capacity = cluster.capacity(gpu_type)
        if not busy_rounds or capacity == 0:
            out[gpu_type] = 0.0
            continue
        used = [r.gpus_used.get(gpu_type, 0) / capacity for r in busy_rounds]
        out[gpu_type] = sum(used) / len(used)
    return out


def queue_length_series(result: SimulationResult) -> list[tuple[float, int]]:
    """(time, queued jobs) per round — active jobs not holding GPUs."""
    return [(r.time, r.active_jobs - r.running_jobs) for r in result.rounds]

"""Evaluation metrics: JCT statistics, finish-time fairness, utilization."""

from repro.metrics.fairness import (FairnessMetrics, fairness_metrics,
                                    ftf_ratio, isolated_jct)
from repro.metrics.jct import (SummaryMetrics, gpu_hours_by_model, jct_cdf,
                               percentile, summarize)
from repro.metrics.utilization import (average_utilization,
                                       queue_length_series,
                                       utilization_by_type)

__all__ = [
    "FairnessMetrics", "fairness_metrics", "ftf_ratio", "isolated_jct",
    "SummaryMetrics", "gpu_hours_by_model", "jct_cdf", "percentile",
    "summarize",
    "average_utilization", "queue_length_series", "utilization_by_type",
]

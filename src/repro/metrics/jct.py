"""Scheduler performance metrics: JCT statistics, makespan, GPU-hours,
contention, restarts — the columns of Tables 3 and 4."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.telemetry import SimulationResult


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile; q in [0, 100]."""
    if not values:
        raise ValueError("need at least one value")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class SummaryMetrics:
    """One row of a Table 3/4-style comparison."""

    scheduler: str
    num_jobs: int
    completed_jobs: int
    avg_jct_hours: float
    p99_jct_hours: float
    makespan_hours: float
    avg_gpu_hours_per_job: float
    avg_contention: float
    max_contention: int
    avg_restarts: float
    median_solve_time: float
    #: rounds that ran on a fallback/carried plan (0 without faults).
    degraded_rounds: int = 0
    #: injected fault events over the whole run (0 without faults).
    fault_events: int = 0

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "scheduler": self.scheduler,
            "jobs": self.num_jobs,
            "completed": self.completed_jobs,
            "avg_jct_h": round(self.avg_jct_hours, 3),
            "p99_jct_h": round(self.p99_jct_hours, 3),
            "makespan_h": round(self.makespan_hours, 3),
            "gpu_h_per_job": round(self.avg_gpu_hours_per_job, 3),
            "avg_contention": round(self.avg_contention, 2),
            "max_contention": self.max_contention,
            "avg_restarts": round(self.avg_restarts, 2),
            "median_solve_s": round(self.median_solve_time, 4),
            "degraded": self.degraded_rounds,
            "faults": self.fault_events,
        }


def summarize(result: SimulationResult) -> SummaryMetrics:
    """Compute the standard comparison row from one simulation result."""
    jcts = result.jcts_hours()
    gpu_hours = result.gpu_hours_per_job()
    active_counts = [r.active_jobs for r in result.rounds if r.active_jobs > 0]
    return SummaryMetrics(
        scheduler=result.scheduler_name,
        num_jobs=len(result.jobs),
        completed_jobs=len(result.completed_jobs),
        avg_jct_hours=float(np.mean(jcts)),
        p99_jct_hours=percentile(jcts, 99),
        makespan_hours=result.makespan_hours,
        avg_gpu_hours_per_job=float(np.mean(gpu_hours)),
        avg_contention=float(np.mean(active_counts)) if active_counts else 0.0,
        max_contention=max(active_counts) if active_counts else 0,
        avg_restarts=float(np.mean([j.num_restarts for j in result.jobs])),
        median_solve_time=result.median_solve_time(),
        degraded_rounds=result.degraded_rounds,
        fault_events=result.total_fault_events,
    )


def gpu_hours_by_model(result: SimulationResult) -> dict[str, dict[str, float]]:
    """model -> gpu_type -> average GPU-hours per job (Figure 6)."""
    totals: dict[str, dict[str, float]] = {}
    counts: dict[str, int] = {}
    for record in result.jobs:
        counts[record.model_name] = counts.get(record.model_name, 0) + 1
        bucket = totals.setdefault(record.model_name, {})
        for gpu_type, seconds in record.gpu_seconds.items():
            bucket[gpu_type] = bucket.get(gpu_type, 0.0) + seconds / 3600.0
    return {
        model: {t: hours / counts[model] for t, hours in bucket.items()}
        for model, bucket in totals.items()
    }


def jct_cdf(result: SimulationResult,
            points: int = 100) -> list[tuple[float, float]]:
    """(jct_hours, cumulative_fraction) pairs for CDF plots (Figures 4/8)."""
    jcts = sorted(result.jcts_hours())
    n = len(jcts)
    if n == 0:
        return []
    step = max(1, n // points)
    return [(jcts[i], (i + 1) / n) for i in range(0, n, step)] + \
        [(jcts[-1], 1.0)]

"""Figure 1: scheduler comparison across three scenarios.

* Homogeneous + adaptive jobs: Pollux and Sia beat Gavel.
* Heterogeneous + adaptive jobs: Sia beats both state-of-the-arts.
* Heterogeneous + rigid jobs: Gavel and Sia beat Pollux; Sia still edges
  out Gavel ~25% (Section 5.4: max-sum-goodput vs max-sum-throughput).
"""

from __future__ import annotations

from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import format_table, run_once, sample_trace
from repro.cluster import presets
from repro.metrics import summarize
from repro.schedulers import GavelScheduler, PolluxScheduler, SiaScheduler
from repro.workloads import tuned_jobs


def run_scenarios():
    scale = bench_scale()
    trace = sample_trace("philly", seed=0, scale=scale)
    homo, hetero = presets.homogeneous(), presets.heterogeneous()
    rigid_hetero = tuned_jobs(trace.jobs, hetero, seed=0)

    def jct(cluster, scheduler, jobs):
        return summarize(run_once(cluster, scheduler, jobs,
                                  scale=scale)).avg_jct_hours

    results: dict[str, dict[str, float]] = {}
    results["homogeneous+adaptive"] = {
        "sia": jct(homo, SiaScheduler(), trace.jobs),
        "pollux": jct(homo, PolluxScheduler(), trace.jobs),
        "gavel": jct(homo, GavelScheduler(),
                     tuned_jobs(trace.jobs, homo, seed=0)),
    }
    results["heterogeneous+adaptive"] = {
        "sia": jct(hetero, SiaScheduler(), trace.jobs),
        "pollux": jct(hetero, PolluxScheduler(), trace.jobs),
        "gavel": jct(hetero, GavelScheduler(), rigid_hetero),
    }
    results["heterogeneous+rigid"] = {
        "sia": jct(hetero, SiaScheduler(), rigid_hetero),
        "pollux": jct(hetero, PolluxScheduler(), rigid_hetero),
        "gavel": jct(hetero, GavelScheduler(), rigid_hetero),
    }
    return results


def test_fig1_three_scenarios(benchmark):
    results = run_once_benchmarked(benchmark, run_scenarios)
    rows = [dict(scenario=name,
                 **{k: round(v, 3) for k, v in values.items()})
            for name, values in results.items()]
    emit("fig1_scenarios",
         format_table(rows, title="Figure 1: avg JCT (hours) per scenario"))

    homo = results["homogeneous+adaptive"]
    hetero = results["heterogeneous+adaptive"]
    rigid = results["heterogeneous+rigid"]

    # Left trio: adaptive schedulers beat Gavel on a homogeneous cluster.
    assert homo["sia"] < homo["gavel"]
    assert homo["pollux"] < homo["gavel"]
    # Middle trio: Sia beats both when both complexities are present.
    assert hetero["sia"] < hetero["pollux"]
    assert hetero["sia"] < hetero["gavel"]
    # Right trio: with rigid jobs Sia still beats Gavel (goodput objective),
    # and Gavel beats Pollux (heterogeneity-aware vs blind).
    assert rigid["sia"] < rigid["gavel"]
    assert rigid["gavel"] < rigid["pollux"]
    # The heterogeneous cluster has faster GPUs: JCTs drop vs homogeneous.
    assert hetero["sia"] < homo["sia"]

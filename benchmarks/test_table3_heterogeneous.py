"""Table 3: Sia vs Pollux vs Gavel+TunedJobs in the Heterogeneous setting,
on Philly-, Helios- and newTrace-like workloads.

Columns reproduced: avg/p99 JCT, makespan, GPU-hours/job, avg/max
contention, avg restarts.  Shapes asserted (paper's claims):

* Sia < Pollux < Gavel on average JCT for every trace (30-93% reductions);
* Sia uses the fewest GPU-hours per job (12-60% fewer);
* Pollux restarts jobs more than Sia (1-GPU allocation steps);
* Gavel's contention blows up on the congested newTrace (paper: ~7x Sia).
"""

from __future__ import annotations

import pytest
from conftest import bench_scale, emit, newtrace_scale, run_once_benchmarked

from repro.analysis import compare_on_trace, format_table, sample_trace
from repro.cluster import presets

TRACES = ("philly", "helios", "newtrace")


def run_trace(trace_name: str):
    scale = newtrace_scale() if trace_name == "newtrace" else bench_scale()
    cluster = presets.heterogeneous()
    trace = sample_trace(trace_name, seed=0, scale=scale)
    return compare_on_trace(cluster, trace, scale=scale)


@pytest.mark.parametrize("trace_name", TRACES)
def test_table3(benchmark, trace_name):
    outcome = run_once_benchmarked(benchmark, lambda: run_trace(trace_name))
    summaries = outcome.summaries()
    rows = [dict(trace=trace_name, **s.as_row())
            for s in summaries.values()]
    emit(f"table3_{trace_name}",
         format_table(rows, title=f"Table 3 ({trace_name}): heterogeneous "
                                  "64-GPU cluster"))

    sia, pollux, gavel = (summaries[k] for k in ("sia", "pollux", "gavel"))
    # Headline orderings.
    assert sia.avg_jct_hours < pollux.avg_jct_hours < gavel.avg_jct_hours
    assert sia.p99_jct_hours <= gavel.p99_jct_hours
    assert sia.avg_gpu_hours_per_job < gavel.avg_gpu_hours_per_job
    # Rough factors: paper reports 30-93% avgJCT reduction vs baselines.
    assert sia.avg_jct_hours < 0.8 * pollux.avg_jct_hours
    assert sia.avg_jct_hours < 0.5 * gavel.avg_jct_hours
    # Everyone finishes the trace at bench scale.
    assert sia.completed_jobs == sia.num_jobs
    if trace_name == "newtrace":
        # Congestion feedback loop: Gavel's queue explodes.
        assert gavel.avg_contention > 2 * sia.avg_contention

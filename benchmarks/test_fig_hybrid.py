"""Section 5.3 figure: adapting hybrid-parallel (PMP x DP) jobs.

(Left) the 2.8B GPT model's throughput scales (nearly) linearly with GPU
count — computation dominates communication for this model.

(Right) Sia elastically scales the GPT job in response to congestion:
scaling down when a burst of jobs arrives and back up when it clears —
the first cluster scheduler to do this for hybrid-parallel jobs.
"""

from __future__ import annotations

from conftest import emit, run_once_benchmarked

from repro.analysis import format_series, format_table, run_once
from repro.analysis.experiments import ExperimentScale
from repro.cluster import presets
from repro.jobs.hybrid import HybridPerfModel, HybridSpec
from repro.jobs.job import make_job
from repro.schedulers import SiaScheduler

SCALE = ExperimentScale(max_hours=100.0)


def throughput_curve():
    spec = HybridSpec()
    perf = HybridPerfModel("gpt-2.8b", spec)
    points = []
    for replicas in (1, 2, 4, 8, 16):
        gpus = replicas * spec.stages_per_type["rtx"]
        nodes = max(1, gpus // 8)
        points.append((gpus, perf.throughput("rtx", replicas, nodes)))
    return points


def adaptation_scenario():
    cluster = presets.heterogeneous()
    gpt = make_job("gpt", "gpt-2.8b", 0.0, hybrid=HybridSpec(),
                   max_gpus=16, work_scale=0.05)
    burst = [make_job(f"b{i}", "bert", 1800.0, work_scale=0.3)
             for i in range(16)]
    result = run_once(cluster, SiaScheduler(), [gpt, *burst], scale=SCALE)
    return result


def test_hybrid_throughput_scaling(benchmark):
    points = run_once_benchmarked(benchmark, throughput_curve)
    emit("fig_hybrid_scaling",
         format_series(points, x_label="gpus", y_label="samples/s",
                       title="Hybrid GPT on rtx: throughput vs GPUs"))
    gpus = [g for g, _ in points]
    xputs = [x for _, x in points]
    # Near-linear scaling: 16x the GPUs gives at least 13x the throughput.
    assert xputs[-1] / xputs[0] > 0.8 * (gpus[-1] / gpus[0])
    # ... and never super-linear.
    assert xputs[-1] / xputs[0] <= gpus[-1] / gpus[0]


def test_hybrid_elastic_adaptation(benchmark):
    result = run_once_benchmarked(benchmark, adaptation_scenario)
    timeline = result.allocation_timeline("gpt")
    rows = [{"t_hours": round(t / 3600.0, 2), "gpu_type": gpu or "-",
             "gpus": n}
            for t, gpu, n in timeline[::5]]
    emit("fig_hybrid_adaptation",
         format_table(rows, title="Sia adaptation of the GPT job over time"))

    counts = [n for _, _, n in timeline if n > 0]
    types = {gpu for _, gpu, n in timeline if n > 0}
    assert result.job("gpt").completed
    # GPU counts are always whole pipeline replicas of the type in use.
    spec = HybridSpec()
    for _, gpu, n in timeline:
        if n > 0:
            assert n % spec.stages_per_type[gpu] == 0
    # Elastic scaling happened: the allocation changed over the job's life.
    assert max(counts) > min(counts)
    # Only the profiled GPU types were ever used.
    assert types <= {"a100", "rtx"}

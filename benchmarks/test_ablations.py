"""Ablations of Sia design choices called out in DESIGN.md.

* **Solver**: exact ILP vs greedy rounding — the ILP's optimality guarantee
  should never hurt and the greedy heuristic stays within a modest factor
  (it is the cheap fallback, not the design point).
* **Restart factor** (Equation 3): disabling it must increase reallocation
  churn (restarts per job); the paper's motivation is that without it
  "tiny changes in G would result in altering some jobs' resources".
* **ILP runtime by backend**: greedy is cheaper per round than the MILP.
"""

from __future__ import annotations

from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import format_table, run_once, sample_trace
from repro.cluster import presets
from repro.core.policy import SiaPolicyParams
from repro.metrics import fairness_metrics, summarize
from repro.schedulers import GavelScheduler, SiaScheduler
from repro.workloads import tuned_jobs


def run_ablations():
    scale = bench_scale()
    cluster = presets.heterogeneous()
    trace = sample_trace("helios", seed=0, scale=scale)
    variants = {
        "sia (milp)": SiaPolicyParams(),
        "sia (greedy)": SiaPolicyParams(solver="greedy"),
        "sia (no restart factor)": SiaPolicyParams(use_restart_factor=False),
    }
    out = {}
    for name, params in variants.items():
        out[name] = summarize(run_once(cluster, SiaScheduler(params),
                                       trace.jobs, scale=scale))
    return out


def test_design_ablations(benchmark):
    results = run_once_benchmarked(benchmark, run_ablations)
    rows = [dict(variant=name, **{
        "avg_jct_h": round(s.avg_jct_hours, 3),
        "avg_restarts": round(s.avg_restarts, 2),
        "median_solve_s": round(s.median_solve_time, 4),
    }) for name, s in results.items()]
    emit("ablations", format_table(rows, title="Sia design ablations"))

    milp = results["sia (milp)"]
    greedy = results["sia (greedy)"]
    no_restart = results["sia (no restart factor)"]

    # The exact solver is no worse than greedy rounding on JCT.
    assert milp.avg_jct_hours <= greedy.avg_jct_hours * 1.1
    # Removing the restart factor increases churn.
    assert no_restart.avg_restarts > milp.avg_restarts
    # All variants complete the workload.
    for summary in results.values():
        assert summary.completed_jobs == summary.num_jobs


def run_gavel_policies():
    scale = bench_scale()
    cluster = presets.heterogeneous()
    trace = sample_trace("helios", seed=1, scale=scale)
    rigid = tuned_jobs(trace.jobs, cluster, seed=1)
    out = {}
    for policy in GavelScheduler.POLICIES:
        result = run_once(cluster, GavelScheduler(policy=policy), rigid,
                          scale=scale)
        out[policy] = (summarize(result),
                       fairness_metrics(result, rigid, cluster))
    return out


def test_gavel_policy_ablation(benchmark):
    """Gavel's two policies trade efficiency for fairness: max-min fairness
    spreads service (bounding the JCT tail under saturation) while
    max-sum-throughput minimizes average JCT (Section 4.3 picks it for that
    reason)."""
    results = run_once_benchmarked(benchmark, run_gavel_policies)
    rows = [{
        "policy": policy,
        "avg_jct_h": round(summary.avg_jct_hours, 3),
        "p99_jct_h": round(summary.p99_jct_hours, 3),
        "worst_ftf": round(fairness.worst_ftf, 2),
    } for policy, (summary, fairness) in results.items()]
    emit("ablation_gavel_policies",
         format_table(rows, title="Gavel policy ablation"))

    max_sum = results["max_sum_throughput"]
    max_min = results["max_min_fairness"]
    # max-min fairness meaningfully improves the worst-case FTF ratio
    # (its whole point: no job is starved by the throughput objective)...
    assert max_min[1].worst_ftf < 0.8 * max_sum[1].worst_ftf
    # ...while staying in the same average-JCT ballpark at bench scale
    # (the paper's full-scale traces separate them further).
    assert max_sum[0].avg_jct_hours <= max_min[0].avg_jct_hours * 1.2
    for summary, _ in results.values():
        assert summary.completed_jobs == summary.num_jobs

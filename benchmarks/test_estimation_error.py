"""Section 4.2 (bootstrapped throughput models): estimation-error convergence.

Sia plans on bootstrapped throughput models that start from scaled
single-GPU profiles and are refined online from the observations each round
delivers.  The goodput ledger makes that convergence measurable: pooled
median relative error between the goodput the ILP optimized and the goodput
the executor delivered, split into early vs late job-age windows.

The cluster has fixed per-(job, GPU type) hardware-rate variability the
catalog does not know about, so:

* the bootstrap's early-window error is visibly nonzero and its late-window
  error shrinks as observations refine the fit (Figure 3's bootstrap ->
  refined loop) — the PR's acceptance criterion;
* the Oracle mode, which knows the catalog perfectly but never learns from
  observations, stays stuck near the noise floor — online fitting beats
  static knowledge under hardware variability.

The workload is a fixed staggered job set (not a sampled paper trace): jobs
must span enough rounds for within-job learning to show, which the
quarter-scale paper traces' very short jobs do not.
"""

from __future__ import annotations

from conftest import emit, run_once_benchmarked

from repro.analysis import format_table
from repro.cluster import presets
from repro.core.types import ProfilingMode
from repro.jobs.job import make_job
from repro.obs import GoodputLedger
from repro.schedulers import SiaScheduler
from repro.sim.engine import simulate

#: fixed per-(job, GPU type) speed variability the bootstrap must learn.
RATE_NOISE = 0.3
MODELS = ("resnet18", "bert", "resnet50", "yolov3", "deepspeech2")


def run_modes():
    cluster = presets.heterogeneous()
    jobs = [make_job(f"j{i}", MODELS[i % len(MODELS)], i * 300.0,
                     work_scale=0.15) for i in range(10)]
    out = {}
    for mode in (ProfilingMode.BOOTSTRAP, ProfilingMode.ORACLE):
        result = simulate(cluster, SiaScheduler(), jobs, seed=1,
                          rate_noise=RATE_NOISE, profiling_mode=mode,
                          max_hours=200)
        ledger = GoodputLedger.from_result(result)
        out[mode.value] = (ledger.convergence_medians(num_windows=2),
                           ledger.median_error(), len(ledger))
    return out


def test_estimation_error_converges(benchmark):
    results = run_once_benchmarked(benchmark, run_modes)
    rows = [{"mode": mode,
             "entries": entries,
             "early_median_err": round(medians[0], 4),
             "late_median_err": round(medians[-1], 4),
             "overall_median_err": round(overall, 4)}
            for mode, (medians, overall, entries) in results.items()]
    emit("estimation_error",
         format_table(rows, title="Goodput-estimation error convergence"))

    early, late = results["bootstrap"][0]
    # The acceptance criterion: Sia's median goodput-estimation error
    # shrinks after the bootstrap phase.
    assert late < early
    # The bootstrap starts visibly wrong under 0.3 rate noise...
    assert early > 0.02
    # ...and refines to beat the static catalog, which cannot learn the
    # hardware bias at all.
    assert results["bootstrap"][1] < results["oracle"][1]

"""Policy-pipeline microbenchmarks: vectorized vs scalar goodput pass.

Measures, per (cluster size, job count) point:

* full policy round latency (bootstrap + goodput_eval + solve + placement),
  vectorized and scalar, via the observability phase spans;
* the goodput_eval speedup the vectorized pipeline delivers;
* steady-state estimator cache hit rate across consecutive rounds.

Results land in ``BENCH_policy.json``.  ``--check-baseline`` compares the
vectorized round latencies against a committed baseline and exits non-zero
on a > ``--regression-factor`` (default 2x) slowdown, which is how CI gates
performance regressions.

Run:  PYTHONPATH=src python benchmarks/perf/policy_bench.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.cluster import presets
from repro.core.policy import SiaPolicyParams
from repro.core.types import ProfilingMode
from repro.obs.tracer import Tracer
from repro.perf import estimator as est_mod
from repro.schedulers import SiaScheduler
from repro.schedulers.base import PLAN_PHASES, JobView
from repro.workloads import helios_trace

#: active jobs per 64 GPUs (paper-proportional load, as in Figure 9).
JOBS_PER_64 = 16


def make_views(scheduler, cluster, n_jobs: int) -> list[JobView]:
    trace = helios_trace(seed=4, num_jobs=n_jobs)
    views = []
    for job in trace.jobs:
        estimator = scheduler.make_estimator(job, cluster,
                                             ProfilingMode.BOOTSTRAP)
        estimator.profile_initial()
        views.append(JobView(job=job, estimator=estimator,
                             current_config=None, age=0.0, num_restarts=0,
                             progress=0.0))
    return views


def run_rounds(scheduler, cluster, views, rounds: int) -> dict:
    """Run consecutive policy rounds over the same views (steady state after
    round 1: no new observations, so estimator caches stay warm), then one
    extra *cold-cache* round at the warm running state.

    The cold round is the honest goodput_eval comparison point: every job
    is running at a realistic configuration (large feasible sets) and every
    feasible (job, config) pair is evaluated exactly once.  The earlier
    warm rounds measure the latency jobs actually see (cache hits included).
    """
    tracer = Tracer()
    scheduler.tracer = tracer
    latencies = []
    previous: dict = {}
    for r in range(rounds):
        start = time.perf_counter()
        plan = scheduler.decide(views, cluster, previous, 60.0 * r)
        latencies.append(time.perf_counter() - start)
        previous = dict(plan.allocations)
        for view in views:
            alloc = plan.allocations.get(view.job_id)
            view.current_config = alloc.configuration() \
                if alloc is not None else None
    phases = {name: tracer.span_stats(name).total for name in PLAN_PHASES}
    hits = sum(getattr(v.estimator, "cache_hits", 0) for v in views)
    misses = sum(getattr(v.estimator, "cache_misses", 0) for v in views)

    for view in views:
        cache = getattr(view.estimator, "_goodput_cache", None)
        if cache is not None:
            cache.clear()
    cold_tracer = Tracer()
    scheduler.tracer = cold_tracer
    scheduler.decide(views, cluster, previous, 60.0 * rounds)
    return {
        "latencies": latencies,
        "phases": phases,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "eval_cold": cold_tracer.span_stats("goodput_eval").total,
    }


def measure_point(size: int, n_jobs: int, rounds: int) -> dict:
    cluster = presets.scaled_heterogeneous(size)
    point: dict = {"gpus": size, "jobs": n_jobs, "rounds": rounds}
    for label, vectorized in (("vectorized", True), ("scalar", False)):
        est_mod.DEFAULT_VECTORIZED = vectorized
        try:
            scheduler = SiaScheduler(SiaPolicyParams(vectorized=vectorized))
            views = make_views(scheduler, cluster, n_jobs)
            result = run_rounds(scheduler, cluster, views, rounds)
        finally:
            est_mod.DEFAULT_VECTORIZED = True
        point[label] = {
            "round_latency_median": statistics.median(result["latencies"]),
            "round_latency_first": result["latencies"][0],
            "phase_totals": result["phases"],
            "goodput_eval_cold": result["eval_cold"],
            "cache_hit_rate": result["cache_hit_rate"],
        }
    scalar_eval = point["scalar"]["goodput_eval_cold"]
    vector_eval = point["vectorized"]["goodput_eval_cold"]
    point["goodput_eval_speedup"] = scalar_eval / vector_eval \
        if vector_eval else float("inf")
    return point


def run_bench(quick: bool) -> dict:
    sizes = (64,) if quick else (64, 128, 256)
    rounds = 2 if quick else 3
    points = [measure_point(size, JOBS_PER_64 * (size // 64), rounds)
              for size in sizes]
    return {"benchmark": "policy_round", "jobs_per_64_gpus": JOBS_PER_64,
            "points": points}


def check_baseline(report: dict, baseline_path: Path,
                   factor: float) -> list[str]:
    baseline = json.loads(baseline_path.read_text())
    by_size = {p["gpus"]: p for p in baseline["points"]}
    failures = []
    for point in report["points"]:
        ref = by_size.get(point["gpus"])
        if ref is None:
            continue
        now = point["vectorized"]["round_latency_median"]
        then = ref["vectorized"]["round_latency_median"]
        if now > factor * then:
            failures.append(
                f"{point['gpus']} GPUs: round latency {now:.4f}s "
                f"> {factor:.1f}x baseline {then:.4f}s")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smallest instance only (CI)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_policy.json"))
    parser.add_argument("--check-baseline", type=Path, default=None,
                        help="baseline JSON to gate regressions against")
    parser.add_argument("--regression-factor", type=float, default=2.0)
    args = parser.parse_args(argv)

    report = run_bench(args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for point in report["points"]:
        vec = point["vectorized"]
        print(f"{point['gpus']:5d} GPUs / {point['jobs']:3d} jobs: "
              f"round {vec['round_latency_median'] * 1e3:8.1f} ms "
              f"(scalar {point['scalar']['round_latency_median'] * 1e3:8.1f}"
              f" ms), goodput_eval speedup "
              f"{point['goodput_eval_speedup']:.1f}x, "
              f"cache hit rate {vec['cache_hit_rate']:.0%}")
    print(f"wrote {args.out}")

    if args.check_baseline is not None:
        failures = check_baseline(report, args.check_baseline,
                                  args.regression_factor)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

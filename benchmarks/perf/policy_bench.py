"""Policy-pipeline microbenchmarks: goodput pass + solver tiers at scale.

Measures, per (cluster size, job count) point:

* full policy round latency (bootstrap + goodput_eval + solve + placement),
  vectorized and scalar, via the observability phase spans (sizes <= 256 —
  the scalar pipeline is too slow to be worth timing beyond that);
* per-solver-backend columns (``milp``, ``lp_round``, ``decomposed``,
  ``tiered``): round latency, solve-phase time, first-round objective and
  its gap vs the MILP reference when the MILP column ran — the solver-tier
  scaling story up to 4096 GPUs / 1024 jobs;
* the goodput_eval speedup the vectorized pipeline delivers;
* steady-state estimator cache hit rate across consecutive rounds.

Results land in ``BENCH_policy.json``.  ``--check-baseline`` compares the
vectorized round latencies against a committed baseline and exits non-zero
on a > ``--regression-factor`` (default 2x) slowdown, which is how CI gates
performance regressions.  ``--sizes`` / ``--backends`` narrow a run (CI
uses ``--sizes 1024`` for the large-point gate without paying for 4096).

``--stream-overhead`` instead measures what the live telemetry plane
(streaming JSONL exporters + SLO evaluation, see ``repro.obs.stream``)
adds to the per-round path: it runs the same simulation bare and fully
observed and exits non-zero when the observed run's per-round latency
exceeds the bare one by more than ``--overhead-budget`` (default 5%).

Run:  PYTHONPATH=src python benchmarks/perf/policy_bench.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.cluster import presets
from repro.core.policy import SiaPolicyParams
from repro.core.types import ProfilingMode
from repro.obs.tracer import Tracer
from repro.perf import estimator as est_mod
from repro.schedulers import SiaScheduler
from repro.schedulers.base import PLAN_PHASES, JobView
from repro.workloads import helios_trace

#: active jobs per 64 GPUs (paper-proportional load, as in Figure 9).
JOBS_PER_64 = 16

#: largest size where the scalar goodput pipeline and the exact-MILP
#: reference column are still affordable to time.
FULL_COMPARE_MAX_GPUS = 256


def default_backends(size: int) -> tuple[str, ...]:
    """Solver columns per point: the MILP reference is measured only where
    it is affordable; the fast tiers are measured everywhere."""
    if size <= FULL_COMPARE_MAX_GPUS:
        return ("milp", "lp_round", "decomposed", "tiered")
    return ("lp_round", "decomposed", "tiered")


def make_views(scheduler, cluster, n_jobs: int) -> list[JobView]:
    trace = helios_trace(seed=4, num_jobs=n_jobs)
    views = []
    for job in trace.jobs:
        estimator = scheduler.make_estimator(job, cluster,
                                             ProfilingMode.BOOTSTRAP)
        estimator.profile_initial()
        views.append(JobView(job=job, estimator=estimator,
                             current_config=None, age=0.0, num_restarts=0,
                             progress=0.0))
    return views


def run_rounds(scheduler, cluster, views, rounds: int) -> dict:
    """Run consecutive policy rounds over the same views (steady state after
    round 1: no new observations, so estimator caches stay warm), then one
    extra *cold-cache* round at the warm running state.

    The cold round is the honest goodput_eval comparison point: every job
    is running at a realistic configuration (large feasible sets) and every
    feasible (job, config) pair is evaluated exactly once.  The earlier
    warm rounds measure the latency jobs actually see (cache hits included).
    """
    from repro.obs.metrics import MetricsRegistry

    tracer = Tracer()
    scheduler.tracer = tracer
    scheduler.metrics = MetricsRegistry()
    latencies = []
    objectives = []
    previous: dict = {}
    for r in range(rounds):
        start = time.perf_counter()
        plan = scheduler.decide(views, cluster, previous, 60.0 * r)
        latencies.append(time.perf_counter() - start)
        objectives.append(plan.objective)
        previous = dict(plan.allocations)
        for view in views:
            alloc = plan.allocations.get(view.job_id)
            view.current_config = alloc.configuration() \
                if alloc is not None else None
    phases = {name: tracer.span_stats(name).total for name in PLAN_PHASES}
    hits = sum(getattr(v.estimator, "cache_hits", 0) for v in views)
    misses = sum(getattr(v.estimator, "cache_misses", 0) for v in views)
    counters = scheduler.metrics.snapshot()

    for view in views:
        cache = getattr(view.estimator, "_goodput_cache", None)
        if cache is not None:
            cache.clear()
    cold_tracer = Tracer()
    scheduler.tracer = cold_tracer
    scheduler.decide(views, cluster, previous, 60.0 * rounds)
    return {
        "latencies": latencies,
        "objectives": objectives,
        "phases": phases,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "eval_cold": cold_tracer.span_stats("goodput_eval").total,
        "warm_start_hits": counters.get("solver.warm_start_hits", 0),
        "reuse_skips": counters.get("solver.reuse_skips", 0),
    }


def _column(result: dict) -> dict:
    return {
        "round_latency_median": statistics.median(result["latencies"]),
        "round_latency_first": result["latencies"][0],
        "objective_first": result["objectives"][0],
        "phase_totals": result["phases"],
        "goodput_eval_cold": result["eval_cold"],
        "cache_hit_rate": result["cache_hit_rate"],
        "warm_start_hits": result["warm_start_hits"],
        "reuse_skips": result["reuse_skips"],
    }


def measure_backend(cluster, n_jobs: int, rounds: int, solver: str,
                    vectorized: bool = True) -> dict:
    """One (point, solver backend) measurement from a fresh job trace."""
    est_mod.DEFAULT_VECTORIZED = vectorized
    try:
        scheduler = SiaScheduler(SiaPolicyParams(vectorized=vectorized,
                                                 solver=solver))
        views = make_views(scheduler, cluster, n_jobs)
        return run_rounds(scheduler, cluster, views, rounds)
    finally:
        est_mod.DEFAULT_VECTORIZED = True


def measure_point(size: int, n_jobs: int, rounds: int,
                  backends: tuple[str, ...] | None = None) -> dict:
    cluster = presets.scaled_heterogeneous(size)
    point: dict = {"gpus": size, "jobs": n_jobs, "rounds": rounds}
    if backends is None:
        backends = default_backends(size)

    point["backends"] = {}
    for solver in backends:
        point["backends"][solver] = _column(
            measure_backend(cluster, n_jobs, rounds, solver))
    # First-round objective gap vs the MILP reference (identical initial
    # views per backend: same trace seed, no prior allocations).  Rigorous
    # gap bounds live in tests/test_solver_tiers.py; this is the at-scale
    # spot check.
    milp_obj = point["backends"].get("milp", {}).get("objective_first")
    if milp_obj:
        for solver, column in point["backends"].items():
            column["optimality_gap_first"] = \
                (milp_obj - column["objective_first"]) / abs(milp_obj)

    # The vectorized-vs-scalar goodput comparison (PR 4's story), and the
    # legacy ``vectorized`` column the baseline gate reads.  Past the
    # full-compare cutoff the scalar pipeline would dominate the wall
    # clock, so the tiered column stands in as the gated latency.
    if size <= FULL_COMPARE_MAX_GPUS:
        point["vectorized"] = point["backends"].get("milp") or _column(
            measure_backend(cluster, n_jobs, rounds, "milp"))
        point["scalar"] = _column(
            measure_backend(cluster, n_jobs, rounds, "milp",
                            vectorized=False))
        scalar_eval = point["scalar"]["goodput_eval_cold"]
        vector_eval = point["vectorized"]["goodput_eval_cold"]
        point["goodput_eval_speedup"] = scalar_eval / vector_eval \
            if vector_eval else float("inf")
    else:
        point["vectorized"] = point["backends"].get("tiered") \
            or next(iter(point["backends"].values()))
    return point


class _TimedObserver:
    """Transparent wrapper that accumulates the wall time spent inside one
    observer's per-round hook (the code the overhead gate measures)."""

    def __init__(self, inner):
        self.inner = inner
        self.total = 0.0

    def on_round(self, result, round_index, dt):
        start = time.perf_counter()
        self.inner.on_round(result, round_index, dt)
        self.total += time.perf_counter() - start

    def on_finalize(self, result):
        self.inner.on_finalize(result)

    def close(self):
        self.inner.close()


def measure_stream_overhead(quick: bool, repeats: int = 3) -> dict:
    """What the streaming + SLO observer stack (events, ledger, alerts,
    live SLO evaluation, Prometheus snapshot) adds to the per-round path.

    The added cost is timed *directly* — each observer's ``on_round`` hook
    is wrapped with a timer — and compared against the same run's round
    latency with the observer time subtracted, so the ratio is immune to
    run-to-run machine drift (an end-to-end bare-vs-observed wall-clock
    diff cannot resolve a sub-5% signal on a noisy host).  Bare runs still
    execute as the reference denominator *and* to assert both modes
    simulate identical round counts (the observers are read-only by
    contract)."""
    import shutil
    import tempfile

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SLOEngine, default_rules
    from repro.obs.stream import (AlertStreamObserver, EventStreamObserver,
                                  LedgerStreamObserver,
                                  PrometheusSnapshotObserver, SLOObserver)
    from repro.sim import Simulator, SimulatorConfig

    sizes = (64,) if quick else (64, 128)
    points = []
    for size in sizes:
        cluster = presets.scaled_heterogeneous(size)
        n_jobs = JOBS_PER_64 * (size // 64)

        def one_run(observed: bool) -> tuple[float, int, float]:
            # Same preset load the policy-round benchmark measures: all
            # n_jobs concurrently active (submit_time 0), so every round's
            # latency is representative of the loaded cluster rather than
            # a near-empty arrival/drain tail.  work_scale 0.4 keeps them
            # alive long enough to amortize one-time costs (imports,
            # finalize fsyncs) over a few hundred rounds.
            trace = helios_trace(seed=4, num_jobs=n_jobs,
                                 work_scale_factor=0.4)
            jobs = [replace(job, submit_time=0.0) for job in trace.jobs]
            tracer = Tracer()
            registry = MetricsRegistry()
            observers: list = []
            out_dir = None
            if observed:
                out_dir = Path(tempfile.mkdtemp(prefix="stream-bench-"))
                observers = [_TimedObserver(obs) for obs in (
                    SLOObserver(SLOEngine(default_rules(),
                                          metrics=registry)),
                    AlertStreamObserver(out_dir / "alerts.jsonl", "sia"),
                    EventStreamObserver(tracer, out_dir / "events.jsonl",
                                        registry),
                    LedgerStreamObserver(out_dir / "ledger.jsonl", "sia"),
                    PrometheusSnapshotObserver(registry,
                                               out_dir / "metrics.prom"),
                )]
            config = SimulatorConfig(tracer=tracer, metrics=registry,
                                     observers=observers)
            start = time.perf_counter()
            result = Simulator(cluster, SiaScheduler(), jobs, config).run()
            elapsed = time.perf_counter() - start
            if out_dir is not None:
                shutil.rmtree(out_dir, ignore_errors=True)
            obs_time = sum(obs.total for obs in observers)
            return elapsed, len(result.rounds), obs_time

        one_run(False)  # warmup: first run pays import/cache costs
        bares = [one_run(False) for _ in range(repeats)]
        observeds = [one_run(True) for _ in range(repeats)]
        bare_s, bare_rounds, _ = min(bares)
        rounds_seen = {r for _, r, _ in bares + observeds}
        assert rounds_seen == {bare_rounds}, \
            "observers changed the round count — determinism contract broken"
        # Per-repeat overhead ratio, each self-consistent within one run:
        # observer time over that same run's observer-free round latency.
        ratios = sorted(obs_time / (elapsed - obs_time)
                        for elapsed, _, obs_time in observeds)
        overhead = statistics.median(ratios)
        observed_s = min(elapsed for elapsed, _, _ in observeds)
        observer_s = min(obs_time for _, _, obs_time in observeds)
        points.append({
            "gpus": size, "jobs": n_jobs, "rounds": bare_rounds,
            "bare_round_s": bare_s / bare_rounds,
            "observed_round_s": observed_s / bare_rounds,
            "observer_round_s": observer_s / bare_rounds,
            "overhead": overhead,
        })
    return {"benchmark": "stream_overhead", "repeats": repeats,
            "points": points}


def run_bench(quick: bool, sizes: tuple[int, ...] | None = None,
              backends: tuple[str, ...] | None = None) -> dict:
    if sizes is None:
        sizes = (64,) if quick else (64, 128, 256, 1024, 4096)
    rounds = 2 if quick else 3
    points = [measure_point(size, JOBS_PER_64 * (size // 64), rounds,
                            backends=backends)
              for size in sizes]
    return {"benchmark": "policy_round", "jobs_per_64_gpus": JOBS_PER_64,
            "points": points}


def check_baseline(report: dict, baseline_path: Path,
                   factor: float) -> list[str]:
    baseline = json.loads(baseline_path.read_text())
    by_size = {p["gpus"]: p for p in baseline["points"]}
    failures = []
    for point in report["points"]:
        ref = by_size.get(point["gpus"])
        if ref is None:
            continue
        now = point["vectorized"]["round_latency_median"]
        then = ref["vectorized"]["round_latency_median"]
        if now > factor * then:
            failures.append(
                f"{point['gpus']} GPUs: round latency {now:.4f}s "
                f"> {factor:.1f}x baseline {then:.4f}s")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smallest instance only (CI)")
    parser.add_argument("--sizes", type=str, default=None,
                        help="comma-separated GPU counts to measure "
                             "(overrides --quick's size selection)")
    parser.add_argument("--backends", type=str, default=None,
                        help="comma-separated solver backends to column "
                             "(default: per-size, MILP reference <= "
                             f"{FULL_COMPARE_MAX_GPUS} GPUs only)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_policy.json"))
    parser.add_argument("--check-baseline", type=Path, default=None,
                        help="baseline JSON to gate regressions against")
    parser.add_argument("--regression-factor", type=float, default=2.0)
    parser.add_argument("--stream-overhead", action="store_true",
                        help="measure streaming+SLO observer overhead "
                             "instead of the policy-round benchmark")
    parser.add_argument("--overhead-budget", type=float, default=0.05,
                        help="max allowed fractional per-round overhead "
                             "for --stream-overhead")
    args = parser.parse_args(argv)

    if args.stream_overhead:
        report = measure_stream_overhead(args.quick)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        failed = False
        for point in report["points"]:
            verdict = "ok" if point["overhead"] <= args.overhead_budget \
                else "OVER BUDGET"
            failed |= point["overhead"] > args.overhead_budget
            print(f"{point['gpus']:5d} GPUs / {point['jobs']:3d} jobs / "
                  f"{point['rounds']:3d} rounds: bare "
                  f"{point['bare_round_s'] * 1e3:8.2f} ms/round, observers "
                  f"+{point['observer_round_s'] * 1e3:.2f} ms/round, "
                  f"overhead {point['overhead']:+.1%} "
                  f"(budget {args.overhead_budget:.0%}) {verdict}")
        print(f"wrote {args.out}")
        return 1 if failed else 0

    sizes = tuple(int(s) for s in args.sizes.split(",")) \
        if args.sizes else None
    backends = tuple(args.backends.split(",")) if args.backends else None
    report = run_bench(args.quick, sizes=sizes, backends=backends)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for point in report["points"]:
        vec = point["vectorized"]
        line = (f"{point['gpus']:5d} GPUs / {point['jobs']:4d} jobs: "
                f"round {vec['round_latency_median'] * 1e3:8.1f} ms")
        if "scalar" in point:
            line += (f" (scalar "
                     f"{point['scalar']['round_latency_median'] * 1e3:8.1f}"
                     f" ms), goodput_eval speedup "
                     f"{point['goodput_eval_speedup']:.1f}x,")
        line += f" cache hit rate {vec['cache_hit_rate']:.0%}"
        print(line)
        for solver, column in point.get("backends", {}).items():
            gap = column.get("optimality_gap_first")
            gap_text = f", gap {gap:+.2%}" if gap is not None else ""
            print(f"        {solver:10s} round "
                  f"{column['round_latency_median'] * 1e3:8.1f} ms, solve "
                  f"{column['phase_totals']['solve'] * 1e3:8.1f} ms total"
                  f"{gap_text}")
    print(f"wrote {args.out}")

    if args.check_baseline is not None:
        failures = check_baseline(report, args.check_baseline,
                                  args.regression_factor)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 11: Sia's avg JCT and makespan as the fraction of
adaptivity-restricted jobs grows (Philly traces).

(Left) strong-scaling jobs (fixed batch size, GPU count/type adaptive);
(Right) rigid jobs (fixed batch size and GPU count, type adaptive).

Shapes: metrics degrade as restrictions grow; full rigidity is worse than
full strong-scaling (the paper: optimizing GPU count is worth 56% avg JCT;
batch size another 13%); Sia still functions (all jobs complete) at 100%
restriction.
"""

from __future__ import annotations

from conftest import emit, run_once_benchmarked

from repro.analysis import ExperimentScale, format_table, run_once
from repro.cluster import presets
from repro.metrics import summarize
from repro.schedulers import SiaScheduler
from repro.workloads import philly_trace, with_adaptivity_mix

FRACTIONS = (0.0, 0.5, 1.0)
#: longer jobs than the default bench scale: restriction effects only show
#: once jobs outlive the scale-up ramp.
SCALE = ExperimentScale(work=0.6, window=0.125, jobs=0.15, max_hours=200.0)


def run_sweeps():
    cluster = presets.heterogeneous()
    trace = philly_trace(seed=9, num_jobs=24, work_scale_factor=SCALE.work,
                         window_hours=1.0)
    out: dict[str, dict[float, object]] = {"strong": {}, "rigid": {}}
    for fraction in FRACTIONS:
        strong_jobs = with_adaptivity_mix(trace.jobs,
                                          strong_fraction=fraction, seed=9)
        rigid_jobs = with_adaptivity_mix(trace.jobs,
                                         rigid_fraction=fraction, seed=9)
        out["strong"][fraction] = summarize(run_once(
            cluster, SiaScheduler(), strong_jobs, scale=SCALE))
        out["rigid"][fraction] = summarize(run_once(
            cluster, SiaScheduler(), rigid_jobs, scale=SCALE))
    return out


def test_fig11_adaptivity_fractions(benchmark):
    results = run_once_benchmarked(benchmark, run_sweeps)
    rows = []
    for kind in ("strong", "rigid"):
        for fraction, summary in results[kind].items():
            rows.append({
                "restriction": kind,
                "fraction_pct": int(100 * fraction),
                "avg_jct_h": round(summary.avg_jct_hours, 3),
                "makespan_h": round(summary.makespan_hours, 3),
            })
    emit("fig11_adaptivity",
         format_table(rows, title="Figure 11: Sia vs % restricted jobs"))

    baseline = results["strong"][0.0]
    # Full rigidity hurts more than full strong-scaling: GPU-count
    # adaptivity is the bigger lever (paper: 56% vs 13%).
    assert results["rigid"][1.0].avg_jct_hours > \
        results["strong"][1.0].avg_jct_hours
    # Restrictions cost performance relative to fully-adaptive jobs.
    assert results["rigid"][1.0].avg_jct_hours > baseline.avg_jct_hours
    # All jobs complete even at 100% restriction.
    for kind in ("strong", "rigid"):
        for summary in results[kind].values():
            assert summary.completed_jobs == summary.num_jobs

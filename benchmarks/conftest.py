"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation:
it runs the (scaled-down) experiment once inside pytest-benchmark, prints
the same rows/series the paper reports, writes them to
``benchmarks/results/<name>.txt``, and asserts the paper's qualitative
shape (who wins, rough factors, crossovers).

Scale: benches default to quarter-ish scale so the whole harness finishes
in minutes.  Set ``REPRO_BENCH_SCALE=full`` for the paper's trace sizes
(much slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"

#: default bench scale: 1/5 work, tight submission window, ~1/3 of the
#: paper's job count — tuned to reproduce the paper's contention levels
#: (avg ~7 jobs competing) while keeping each simulation under a minute.
SMALL = ExperimentScale(work=0.2, window=0.1, jobs=0.3, max_hours=100.0)
#: newTrace is 6x longer; shrink it further so the bench stays minutes.
SMALL_NEWTRACE = ExperimentScale(work=0.15, window=0.05, jobs=0.125,
                                 max_hours=100.0)
FULL = ExperimentScale(work=1.0, window=1.0, jobs=1.0, max_hours=2000.0)


def bench_scale() -> ExperimentScale:
    return FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" else SMALL


def newtrace_scale() -> ExperimentScale:
    return FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" \
        else SMALL_NEWTRACE


def emit(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


def run_once_benchmarked(benchmark, fn):
    """Execute one expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR

"""Figure 7: average JCT as a function of job arrival rate (Helios traces,
heterogeneous 64-GPU cluster).

Shapes: every scheduler's avg JCT grows with arrival rate; Sia
consistently beats Pollux (paper: 50-65%); the Sia/Pollux advantage over
Gavel widens as rates climb (adaptive scale-down beats time-sharing).
"""

from __future__ import annotations

from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import compare_on_trace, format_table
from repro.cluster import presets
from repro.workloads import helios_trace

#: paper sweeps 10..50 jobs/hour.  Jobs here run at 1/5 length, so the
#: equivalent relative load is reached with 3 jobs per paper-rate unit over
#: a 1.5 h window (rate 50 -> 150 jobs).
RATES = (10, 20, 35, 50)
WINDOW_HOURS = 1.5
JOBS_PER_RATE = 3


def run_sweep():
    scale = bench_scale()
    cluster = presets.heterogeneous()
    out: dict[int, dict[str, float]] = {}
    for rate in RATES:
        num_jobs = max(8, rate * JOBS_PER_RATE)
        trace = helios_trace(seed=2, num_jobs=num_jobs,
                             work_scale_factor=scale.work,
                             window_hours=WINDOW_HOURS)
        outcome = compare_on_trace(cluster, trace, scale=scale)
        out[rate] = {name: s.avg_jct_hours
                     for name, s in outcome.summaries().items()}
    return out


def test_fig7_arrival_rate_sweep(benchmark):
    sweep = run_once_benchmarked(benchmark, run_sweep)
    rows = [dict(rate_jobs_per_hr=rate,
                 **{k: round(v, 3) for k, v in values.items()})
            for rate, values in sweep.items()]
    emit("fig7_arrival_rates",
         format_table(rows, title="Figure 7: avg JCT (h) vs arrival rate"))

    # JCT grows with load for every scheduler (compare lightest vs heaviest).
    for scheduler in ("sia", "pollux", "gavel"):
        assert sweep[RATES[-1]][scheduler] > sweep[RATES[0]][scheduler]
    # Sia beats Pollux and Gavel under contention (paper: 50-65% vs Pollux);
    # at the lightest rate the cluster is idle and everyone is close.
    for rate in RATES[1:]:
        assert sweep[rate]["sia"] < sweep[rate]["pollux"]
        assert sweep[rate]["sia"] < sweep[rate]["gavel"]
    assert sweep[RATES[0]]["sia"] < 1.5 * sweep[RATES[0]]["pollux"]
    # The Sia-vs-Gavel gap widens with load (absolute hours).
    gap_low = sweep[RATES[0]]["gavel"] - sweep[RATES[0]]["sia"]
    gap_high = sweep[RATES[-1]]["gavel"] - sweep[RATES[-1]]["sia"]
    assert gap_high > gap_low

"""Table 4: the Homogeneous setting (16x t4 nodes, Philly trace).

Sia vs Pollux (adaptive) vs Shockwave+TJ, Themis+TJ, Gavel+TJ (inelastic).
Shapes: Sia ~ Pollux (ILP matches the GA on its home turf); both beat all
inelastic baselines by a wide margin (paper: 50-70%); Shockwave is the best
inelastic baseline; Sia restarts less than Pollux.
"""

from __future__ import annotations

from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import format_table, run_once, sample_trace
from repro.cluster import presets
from repro.metrics import summarize
from repro.schedulers import (GavelScheduler, PolluxScheduler,
                              ShockwaveScheduler, SiaScheduler,
                              ThemisScheduler)
from repro.workloads import tuned_jobs


def run_table4():
    scale = bench_scale()
    cluster = presets.homogeneous()
    trace = sample_trace("philly", seed=0, scale=scale)
    rigid = tuned_jobs(trace.jobs, cluster, seed=0)
    summaries = {}
    for name, scheduler, jobs in [
        ("sia", SiaScheduler(), trace.jobs),
        ("pollux", PolluxScheduler(), trace.jobs),
        ("shockwave", ShockwaveScheduler(), rigid),
        ("themis", ThemisScheduler(), rigid),
        ("gavel", GavelScheduler(), rigid),
    ]:
        summaries[name] = summarize(run_once(cluster, scheduler, jobs,
                                             scale=scale))
    return summaries


def test_table4_homogeneous(benchmark):
    summaries = run_once_benchmarked(benchmark, run_table4)
    rows = [s.as_row() for s in summaries.values()]
    emit("table4_homogeneous",
         format_table(rows, title="Table 4: homogeneous 64-GPU (16x t4)"))

    sia = summaries["sia"]
    pollux = summaries["pollux"]
    inelastic = {k: summaries[k] for k in ("shockwave", "themis", "gavel")}

    # Sia matches Pollux in Pollux's home setting (Table 4 parity).
    assert sia.avg_jct_hours <= 1.25 * pollux.avg_jct_hours
    # Both adaptive schedulers beat every inelastic baseline.
    for name, summary in inelastic.items():
        assert sia.avg_jct_hours < summary.avg_jct_hours, name
        assert pollux.avg_jct_hours < summary.avg_jct_hours, name
    # Shockwave is the best inelastic baseline on average JCT.
    assert inelastic["shockwave"].avg_jct_hours <= \
        min(inelastic["themis"].avg_jct_hours,
            inelastic["gavel"].avg_jct_hours) * 1.05
    # Sia restarts less than Pollux (Section 5.4: 2.6 vs 5.1 per job).
    assert sia.avg_restarts <= pollux.avg_restarts

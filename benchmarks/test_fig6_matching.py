"""Figure 6: GPU hours consumed per model, per scheduler (Helios traces,
heterogeneous setting) — how well jobs are matched to GPU types.

Shapes: Sia allocates BERT almost exclusively to a100; Sia routes
DeepSpeech2 mostly away from a100 (to rtx), freeing a100 for BERT; Pollux,
being heterogeneity-unaware, spreads models across types with no strong
preference.
"""

from __future__ import annotations

from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import compare_on_trace, format_table, sample_trace
from repro.cluster import presets
from repro.metrics import gpu_hours_by_model


def run_fig6():
    scale = bench_scale()
    cluster = presets.heterogeneous()
    trace = sample_trace("helios", seed=1, scale=scale)
    outcome = compare_on_trace(cluster, trace, scale=scale)
    return {name: gpu_hours_by_model(result)
            for name, result in outcome.results.items()}


def _share(by_model: dict, model: str, gpu_type: str) -> float:
    hours = by_model.get(model, {})
    total = sum(hours.values())
    if total == 0:
        return 0.0
    return hours.get(gpu_type, 0.0) / total


def test_fig6_job_gpu_matching(benchmark):
    per_scheduler = run_once_benchmarked(benchmark, run_fig6)

    rows = []
    for scheduler, by_model in per_scheduler.items():
        for model, hours in sorted(by_model.items()):
            row = {"scheduler": scheduler, "model": model}
            for gpu_type in ("t4", "rtx", "a100"):
                row[gpu_type] = round(hours.get(gpu_type, 0.0), 2)
            rows.append(row)
    emit("fig6_gpu_hours_by_model",
         format_table(rows, title="Figure 6: avg GPU-hours per job by "
                                  "model and GPU type"))

    sia = per_scheduler["sia"]
    pollux = per_scheduler["pollux"]
    # Sia sends BERT predominantly to a100 (paper: almost exclusively).
    assert _share(sia, "bert", "a100") > 0.6
    # Sia gives DeepSpeech2 less a100 share than BERT gets.
    if "deepspeech2" in sia:
        assert _share(sia, "deepspeech2", "a100") < _share(sia, "bert", "a100")
    # Pollux shows a weaker BERT->a100 preference than Sia.
    assert _share(pollux, "bert", "a100") < _share(sia, "bert", "a100")

"""Section 5.7 (profiling overheads): Oracle vs No-Prof vs Bootstrap.

Shapes: Bootstrap clearly beats No-Prof (paper: ~30%) and lands within a
small margin of the impractical Oracle (paper: 8% worse); the bootstrap
profiling cost stays around 0.1 GPU-hours per job.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import format_table, run_once, sample_trace
from repro.cluster import presets
from repro.core.types import ProfilingMode
from repro.metrics import summarize
from repro.schedulers import SiaScheduler

MODES = (ProfilingMode.ORACLE, ProfilingMode.BOOTSTRAP, ProfilingMode.NO_PROF)


def run_modes():
    scale = bench_scale()
    cluster = presets.heterogeneous()
    trace = sample_trace("helios", seed=0, scale=scale)
    out = {}
    for mode in MODES:
        result = run_once(cluster, SiaScheduler(), trace.jobs, scale=scale,
                          profiling_mode=mode)
        profiling_hours = float(np.mean(
            [j.profiling_gpu_seconds for j in result.jobs])) / 3600.0
        out[mode.value] = (summarize(result), profiling_hours)
    return out


def test_profiling_mode_comparison(benchmark):
    results = run_once_benchmarked(benchmark, run_modes)
    rows = [{"mode": mode,
             "avg_jct_h": round(summary.avg_jct_hours, 3),
             "profiling_gpu_h_per_job": round(hours, 4)}
            for mode, (summary, hours) in results.items()]
    emit("profiling_modes",
         format_table(rows, title="Section 5.7: profiling modes"))

    oracle = results["oracle"][0].avg_jct_hours
    bootstrap = results["bootstrap"][0].avg_jct_hours
    no_prof = results["no_prof"][0].avg_jct_hours
    # Ordering: Oracle <= Bootstrap <= No-Prof.
    assert oracle <= bootstrap * 1.1
    assert bootstrap <= no_prof
    # Bootstrap is much closer to Oracle than to No-Prof... unless No-Prof
    # happens to be close to both; require the paper's directional gap.
    assert no_prof - bootstrap >= -1e-9
    assert bootstrap - oracle <= 0.5 * max(no_prof - oracle, 1e-9) + 0.05
    # Profiling overhead is tiny (paper: ~0.1 GPU-hours per job).
    assert results["bootstrap"][1] < 0.1
    assert results["oracle"][1] == 0.0
    assert results["no_prof"][1] == 0.0

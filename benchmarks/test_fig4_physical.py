"""Figure 4 (and Figure 5's timeline): the physical-testbed experiment.

The paper runs a 3-hour, 30-job trace on the 44-GPU physical cluster
(3x rtx + 1x quad + 2x a100) and compares against the simulator's
prediction.  We emulate the physical cluster as the same simulation with
hardware-variability noise (fixed per-(job, GPU-type) speed bias) and
measurement jitter.

Shapes: Sia < Pollux < Gavel on the "physical" cluster (paper: 35-50%
lower); Sia's simulated-vs-real average JCT error stays small (paper: <5%
for Sia/Gavel), while Pollux degrades more on real hardware than the clean
simulation predicts.
"""

from __future__ import annotations

from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import format_table, run_once
from repro.cluster import presets
from repro.metrics import summarize
from repro.schedulers import GavelScheduler, PolluxScheduler, SiaScheduler
from repro.workloads import philly_trace, tuned_jobs

#: "real hardware" noise: per-(job, type) speed variance + measurement jitter.
RATE_NOISE = 0.12
OBS_NOISE = 0.05


def run_physical():
    scale = bench_scale()
    cluster = presets.physical()
    trace = philly_trace(seed=0, num_jobs=30,
                         work_scale_factor=scale.work,
                         window_hours=3.0 * scale.window / 0.1)
    rigid = tuned_jobs(trace.jobs, cluster, seed=0)
    out = {}
    for name, scheduler, jobs in [("sia", SiaScheduler(), trace.jobs),
                                  ("pollux", PolluxScheduler(), trace.jobs),
                                  ("gavel", GavelScheduler(), rigid)]:
        simulated = run_once(cluster, scheduler, jobs, scale=scale)
        real = run_once(cluster, type(scheduler)(), jobs, scale=scale,
                        rate_noise=RATE_NOISE, obs_noise=OBS_NOISE, seed=1)
        out[name] = (summarize(simulated), summarize(real), real)
    return out


def test_fig4_physical_testbed(benchmark):
    results = run_once_benchmarked(benchmark, run_physical)
    rows = []
    for name, (simulated, real, _) in results.items():
        rows.append({
            "scheduler": name,
            "sim_avg_jct_h": round(simulated.avg_jct_hours, 3),
            "real_avg_jct_h": round(real.avg_jct_hours, 3),
            "gap_pct": round(100 * abs(real.avg_jct_hours -
                                       simulated.avg_jct_hours)
                             / simulated.avg_jct_hours, 1),
        })
    emit("fig4_physical",
         format_table(rows, title="Figure 4: physical (noisy) vs simulated "
                                  "avg JCT, 44-GPU testbed"))

    real_jcts = {name: real.avg_jct_hours
                 for name, (_, real, _) in results.items()}
    # Sia wins on the physical cluster.
    assert real_jcts["sia"] < real_jcts["pollux"]
    assert real_jcts["sia"] < real_jcts["gavel"]
    # Simulator fidelity for Sia: small sim-vs-real gap (paper: <5%; we
    # allow more at reduced scale).
    sia_sim, sia_real, _ = results["sia"]
    gap = abs(sia_real.avg_jct_hours - sia_sim.avg_jct_hours) \
        / sia_sim.avg_jct_hours
    assert gap < 0.35


def test_fig5_allocation_timeline(benchmark):
    """Figure 5: Sia dynamically adjusts GPU type and count over a job's
    life.  We verify at least one long job changes its allocation and that
    the timeline renders."""
    def run():
        scale = bench_scale()
        cluster = presets.physical()
        trace = philly_trace(seed=0, num_jobs=30,
                             work_scale_factor=scale.work,
                             window_hours=1.0)
        return trace, run_once(cluster, SiaScheduler(), trace.jobs,
                               scale=scale)

    trace, result = run_once_benchmarked(benchmark, run)
    changed = 0
    lines = []
    for job in trace.jobs:
        timeline = result.allocation_timeline(job.job_id)
        held = [(t, gpu, n) for t, gpu, n in timeline if n > 0]
        if len({(gpu, n) for _, gpu, n in held}) > 1:
            changed += 1
        if held and len(lines) < 3:
            spans = ", ".join(f"{t/3600:.2f}h:{n}x{gpu}"
                              for t, gpu, n in held[:8])
            lines.append(f"{job.job_id} ({job.model_name}): {spans}")
    emit("fig5_timeline", "\n".join(lines))
    assert changed >= 3, "expected several jobs to be re-sized/migrated"

"""Gray-failure defense A/B: the health layer must recover most of the
goodput silently-degraded nodes take away.

Three runs of the same rigid workload on the heterogeneous cluster:

* **clean** — no faults, the JCT floor;
* **no defense** — seeded :class:`~repro.sim.faults.GrayFailureModel`
  episodes slow a few executors to 25% while their telemetry stays rosy;
  rigid FIFO jobs pinned to a gray node stay pinned for the whole episode;
* **defense** — same faults with the health layer on: realized-vs-estimated
  goodput divergence quarantines the gray nodes, their jobs are evicted
  and re-placed on clean spare capacity.

The acceptance criterion is that the defense recovers at least half of
the JCT lost to the gray episodes:
``(nodef - defended) >= 0.5 * (nodef - clean)``.

The workload is rigid FIFO on purpose: an adaptive scheduler at full
cluster saturation has no spare capacity to re-place evicted jobs onto, so
quarantine there trades speed for capacity roughly evenly and the defense's
value is masked.  Rigid jobs with slack make the gray node's damage — and
the defense's recovery — directly visible.
"""

from __future__ import annotations

from conftest import emit, run_once_benchmarked

from repro.analysis import format_table
from repro.cluster import presets
from repro.core.health import HealthConfig
from repro.core.types import ProfilingMode
from repro.jobs.job import make_job
from repro.schedulers import FIFOScheduler
from repro.sim import GrayFailureModel
from repro.sim.engine import Simulator, SimulatorConfig
from repro.workloads.tuning import tuned_jobs

GRAY = dict(rate=0.3, slowdown=0.25, duration=72000.0, seed=5)


def run_ab():
    cluster = presets.heterogeneous()
    out = {}
    for name, gray, health in (("clean", False, False),
                               ("no defense", True, False),
                               ("defense", True, True)):
        rigid = tuned_jobs(
            [make_job(f"j{i}", "resnet18", 0.0, work_scale=8.0)
             for i in range(5)], cluster, seed=0)
        config = SimulatorConfig(
            profiling_mode=ProfilingMode.ORACLE, seed=4, max_hours=200,
            fault_models=[GrayFailureModel(**GRAY)] if gray else [],
            health=HealthConfig(min_samples=3) if health else None,
            invariants="strict")
        result = Simulator(cluster, FIFOScheduler(), rigid, config).run()
        counts = result.health_counts()
        out[name] = {
            "jct_sum_h": sum(result.jcts_hours()),
            "gray_episodes": result.fault_counts().get("gray_failure", 0),
            "quarantines": counts.get("health.quarantine", 0),
            "evictions": counts.get("health.evict", 0),
        }
    return out


def test_defense_recovers_half_the_lost_goodput(benchmark):
    results = run_once_benchmarked(benchmark, run_ab)
    rows = [{"run": name, **{k: round(v, 3) if isinstance(v, float) else v
                             for k, v in stats.items()}}
            for name, stats in results.items()]

    clean = results["clean"]["jct_sum_h"]
    nodef = results["no defense"]["jct_sum_h"]
    defended = results["defense"]["jct_sum_h"]
    lost = nodef - clean
    recovered = nodef - defended
    frac = recovered / lost if lost > 0 else float("nan")
    rows.append({"run": "recovered fraction", "jct_sum_h": round(frac, 3),
                 "gray_episodes": "", "quarantines": "", "evictions": ""})
    emit("gray_failure_ab",
         format_table(rows, title="Gray-failure defense A/B (sum JCT, h)"))

    assert results["no defense"]["gray_episodes"] > 0
    assert results["defense"]["quarantines"] > 0
    assert lost > 0  # gray episodes actually hurt the undefended run
    # Acceptance criterion: the health layer recovers at least half of
    # the goodput the gray failures took away.
    assert recovered >= 0.5 * lost

"""Figure 9: median policy runtime vs cluster size (64 -> 1024 GPUs,
proportionally scaled Helios job mixes).

This is a policy-only microbenchmark (no full simulation): for each
cluster size we synthesize a proportional population of job views and time
one scheduling decision per scheduler.

Shapes: Sia's ILP stays around a second even at 1024+ GPUs; Pollux's
genetic algorithm is 1-2 orders of magnitude slower and grows faster with
cluster size; Gavel's LP is the fastest.
"""

from __future__ import annotations

import time

from conftest import emit, run_once_benchmarked

from repro.analysis import format_table
from repro.cluster import presets
from repro.core.types import AdaptivityMode, ProfilingMode
from repro.jobs.job import make_job
from repro.obs.tracer import Tracer
from repro.schedulers import GavelScheduler, PolluxScheduler, SiaScheduler
from repro.schedulers.base import PLAN_PHASES, JobView
from repro.workloads import helios_trace

SIZES = (64, 128, 256, 512, 1024)
#: active jobs per 64 GPUs (the paper scales traces with cluster size).
JOBS_PER_64 = 12


def make_views(scheduler, cluster, n_jobs: int,
               rigid: bool) -> list[JobView]:
    trace = helios_trace(seed=4, num_jobs=n_jobs)
    views = []
    for job in trace.jobs:
        if rigid:
            job = make_job(job.job_id, job.model_name, job.submit_time,
                           adaptivity=AdaptivityMode.RIGID,
                           fixed_num_gpus=2,
                           fixed_batch_size=job.profile.min_bsz)
        estimator = scheduler.make_estimator(job, cluster,
                                             ProfilingMode.BOOTSTRAP)
        estimator.profile_initial()
        views.append(JobView(job=job, estimator=estimator,
                             current_config=None, age=0.0, num_restarts=0,
                             progress=0.0))
    return views


def time_decision(scheduler, cluster, views) -> float:
    start = time.perf_counter()
    scheduler.decide(views, cluster, {}, 0.0)
    return time.perf_counter() - start


def run_scaling():
    results: dict[int, dict[str, float]] = {}
    for size in SIZES:
        cluster = presets.scaled_heterogeneous(size)
        n_jobs = JOBS_PER_64 * (size // 64)
        row: dict[str, float] = {}
        for name, scheduler, rigid in [
            ("sia", SiaScheduler(), False),
            ("pollux", PolluxScheduler(), False),
            ("gavel", GavelScheduler(), True),
        ]:
            views = make_views(scheduler, cluster, n_jobs, rigid)
            row[name] = time_decision(scheduler, cluster, views)
        results[size] = row
    return results


def test_fig9_policy_scalability(benchmark):
    results = run_once_benchmarked(benchmark, run_scaling)
    rows = [dict(gpus=size, **{k: round(v, 4) for k, v in row.items()})
            for size, row in results.items()]
    emit("fig9_policy_runtime",
         format_table(rows, title="Figure 9: policy runtime (s) vs cluster "
                                  "size"))

    largest = results[SIZES[-1]]
    # Sia stays practical at 1024 GPUs (paper: ~1 s at 2048).
    assert largest["sia"] < 5.0
    # Pollux is much slower than Sia at scale (paper: ~100x).
    assert largest["pollux"] > 3 * largest["sia"]
    # Gavel is the fastest (no adaptivity choices).
    assert largest["gavel"] < largest["sia"]
    # Pollux's runtime grows faster than Sia's from smallest to largest.
    pollux_growth = results[SIZES[-1]]["pollux"] / results[SIZES[0]]["pollux"]
    sia_growth = results[SIZES[-1]]["sia"] / results[SIZES[0]]["sia"]
    assert pollux_growth > sia_growth * 0.5  # at minimum comparable growth


def run_traced_breakdown():
    """One traced Sia decision at the largest size: where does the plan
    path spend its time?  (bootstrap / goodput_eval / solve / placement)"""
    size = SIZES[-1]
    cluster = presets.scaled_heterogeneous(size)
    scheduler = SiaScheduler()
    scheduler.tracer = tracer = Tracer()
    views = make_views(scheduler, cluster, JOBS_PER_64 * (size // 64), False)
    plan = scheduler.decide(views, cluster, {}, 0.0)
    breakdown = {name: tracer.span_stats(name).total for name in PLAN_PHASES}
    return plan.solve_time, breakdown


def test_fig9_phase_breakdown(benchmark):
    solve_time, breakdown = run_once_benchmarked(benchmark,
                                                 run_traced_breakdown)
    rows = [{"phase": name, "seconds": round(secs, 4),
             "share": f"{secs / solve_time:.1%}" if solve_time else "-"}
            for name, secs in breakdown.items()]
    emit("fig9_phase_breakdown",
         format_table(rows, title=f"Sia plan-phase breakdown at "
                                  f"{SIZES[-1]} GPUs "
                                  f"(total {solve_time:.4f}s)"))
    # Every standard phase span was emitted, and the phases account for
    # (nearly) all of the recorded plan time.
    assert all(secs > 0.0 for secs in breakdown.values())
    assert sum(breakdown.values()) <= solve_time
    assert sum(breakdown.values()) > 0.8 * solve_time

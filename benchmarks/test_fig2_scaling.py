"""Figure 2: goodput scaling with GPU count per (model, GPU type).

The paper plots goodput relative to single-T4 goodput for ResNet18, BERT
and DeepSpeech2 on A100/RTX/T4, 1-24 GPUs.  Shapes to reproduce: BERT on
A100 towers over everything (~8x at one GPU, super-linear in relative
terms as memory admits bigger batches); DeepSpeech2's RTX curve sits close
to A100; all curves grow with GPU count.
"""

from __future__ import annotations

from conftest import emit, run_once_benchmarked

from repro.analysis import format_table
from repro.perf import profiles

MODELS = ("resnet18", "bert", "deepspeech2")
GPU_TYPES = ("a100", "rtx", "t4")
GPU_COUNTS = (1, 2, 4, 8, 16, 24)


def goodput(model: str, gpu_type: str, num_gpus: int) -> float:
    profile = profiles.model_profile(model)
    cap = profiles.max_local_bsz(model, gpu_type)
    if cap < 1:
        return 0.0
    gpus_per_node = 8 if gpu_type in ("a100", "rtx") else 4
    nodes = max(1, -(-num_gpus // gpus_per_node))
    return profiles.true_goodput_model(model, gpu_type).goodput(
        num_gpus, nodes, max_local_bsz=cap,
        max_total_bsz=profile.max_bsz, min_total_bsz=profile.min_bsz)


def compute_curves() -> dict[str, dict[str, list[float]]]:
    curves: dict[str, dict[str, list[float]]] = {}
    for model in MODELS:
        base = goodput(model, "t4", 1)
        curves[model] = {
            gpu_type: [goodput(model, gpu_type, k) / base
                       for k in GPU_COUNTS]
            for gpu_type in GPU_TYPES
        }
    return curves


def test_fig2_goodput_scaling(benchmark):
    curves = run_once_benchmarked(benchmark, compute_curves)

    rows = []
    for model in MODELS:
        for gpu_type in GPU_TYPES:
            row = {"model": model, "gpu": gpu_type}
            for k, value in zip(GPU_COUNTS, curves[model][gpu_type]):
                row[f"{k}gpu"] = round(value, 1)
            rows.append(row)
    emit("fig2_goodput_scaling",
         format_table(rows, title="Figure 2: goodput relative to 1x T4"))

    # Shape assertions -----------------------------------------------------
    for model in MODELS:
        for gpu_type in GPU_TYPES:
            series = curves[model][gpu_type]
            # goodput grows with GPU count everywhere
            assert all(b >= a * 0.99 for a, b in zip(series, series[1:])), \
                (model, gpu_type)
    # BERT on A100 dominates every other curve at 16+ GPUs (paper: ~60x T4).
    bert_a100_16 = curves["bert"]["a100"][GPU_COUNTS.index(16)]
    assert bert_a100_16 > 20
    for gpu_type in ("rtx", "t4"):
        assert bert_a100_16 > 2.5 * curves["bert"][gpu_type][-1]
    # DeepSpeech2: within a node (up to 8 GPUs), rtx is a near-substitute
    # for a100; beyond one node its 50 Gb/s Ethernet falls behind.
    ds2 = curves["deepspeech2"]
    idx8 = GPU_COUNTS.index(8)
    assert ds2["rtx"][idx8] > 0.5 * ds2["a100"][idx8]
    assert ds2["rtx"][-1] / ds2["a100"][-1] < \
        ds2["rtx"][idx8] / ds2["a100"][idx8]
    # ResNet18 gains less from a100 than BERT does (small model).
    assert curves["resnet18"]["a100"][0] < curves["bert"]["a100"][0]

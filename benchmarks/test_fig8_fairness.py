"""Figure 8: finish-time-fairness (Helios traces, heterogeneous setting)
for Sia, Pollux, Gavel, Shockwave and Themis.

Shapes (paper: Sia worst rho 1.2, unfair fraction <0.3%, vs Pollux 4.6/28%,
Gavel 27.8/15%, Shockwave 3.3/14%):

* Sia has the lowest unfair-job fraction;
* Sia's worst-case rho is no worse than Pollux's, Shockwave's or Themis's.

Note on Gavel: the FTF baseline (Mahajan et al.) is *self-referential* —
the isolated fair cluster is sized by the contention the job observed
*under the evaluated scheduler*.  A scheduler that congests the cluster
therefore gets an easier bar.  At bench scale this can push Gavel's rho
below 1 even while its average JCT is 2-3x Sia's; the paper's 27.8 arises
from multi-day starvation tails that need the full 8-hour/160-job trace to
develop.  We therefore assert Gavel's *JCT* inferiority alongside the
fairness shapes rather than its rho tail.

This bench runs jobs at full work-scale (fairness ratios are only
meaningful when jobs dwarf scheduling overheads), so it is one of the
slower benches (~1 min).
"""

from __future__ import annotations

from conftest import emit, run_once_benchmarked

from repro.analysis import (ExperimentScale, compare_on_trace, format_table,
                            rigid_scheduler_set)
from repro.cluster import presets
from repro.metrics import fairness_metrics, summarize
from repro.workloads import helios_trace

SCALE = ExperimentScale(work=1.0, window=0.125, jobs=0.25, max_hours=300.0)


def run_fairness():
    cluster = presets.heterogeneous()
    trace = helios_trace(seed=3, num_jobs=40, work_scale_factor=1.0,
                         window_hours=1.0)
    outcome = compare_on_trace(
        cluster, trace, scale=SCALE,
        rigid=rigid_scheduler_set(include_fairness=True))
    metrics = {}
    for name, result in outcome.results.items():
        metrics[name] = (fairness_metrics(result, outcome.jobs_used[name],
                                          cluster),
                         summarize(result))
    return metrics


def test_fig8_finish_time_fairness(benchmark):
    metrics = run_once_benchmarked(benchmark, run_fairness)
    rows = [{
        "scheduler": name,
        "worst_ftf": round(fair.worst_ftf, 2),
        "unfair_fraction": round(fair.unfair_fraction, 3),
        "median_ftf": round(sorted(fair.ratios)[len(fair.ratios) // 2], 2),
        "avg_jct_h": round(summary.avg_jct_hours, 3),
        "p99_jct_h": round(summary.p99_jct_hours, 2),
    } for name, (fair, summary) in metrics.items()]
    emit("fig8_fairness",
         format_table(rows, title="Figure 8: finish-time fairness (full-"
                                  "length jobs)"))

    sia_fair, sia_summary = metrics["sia"]
    # Sia has the lowest unfair-job fraction of all schedulers except
    # possibly Gavel, whose self-referential baseline can report near-zero
    # unfairness despite 2-3x worse JCTs (see module docstring).
    for name, (fair, _) in metrics.items():
        if name not in ("sia", "gavel"):
            assert sia_fair.unfair_fraction <= fair.unfair_fraction + 1e-9, name
    assert sia_fair.unfair_fraction < 0.1
    # Sia's worst-case rho beats its like-for-like adaptive rival.  (The
    # slow inelastic baselines' rho is flattered by the same
    # self-referential-baseline effect as Gavel's: they congest the cluster
    # 2-3x more, which shrinks the "fair isolated cluster" they are
    # compared against.)
    assert sia_fair.worst_ftf <= metrics["pollux"][0].worst_ftf * 1.05
    # Sia also delivers the best JCTs while being fairest (the paper's
    # point: fairness does not cost efficiency here).
    for name, (_, summary) in metrics.items():
        if name != "sia":
            assert sia_summary.avg_jct_hours < summary.avg_jct_hours, name
    # JCT CDF shape: Sia's tail beats Gavel's and Shockwave's.
    assert sia_summary.p99_jct_hours < metrics["gavel"][1].p99_jct_hours
    assert sia_summary.p99_jct_hours < metrics["shockwave"][1].p99_jct_hours

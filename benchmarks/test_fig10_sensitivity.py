"""Figure 10: Sia parameter sensitivity.

(Left) scheduler metrics vs the fairness power p in [-1, 1]: the paper's
point is *robustness* — avg JCT and makespan vary modestly across the
sweep (p = -0.5 is chosen as a good all-rounder), while large positive p
trades p99 JCT against average JCT.

(Right) avg JCT vs scheduling-round duration: 60 s is best; 300 s costs
about 12% avg JCT; 30 s over-reallocates.
"""

from __future__ import annotations

from conftest import bench_scale, emit, run_once_benchmarked

from repro.analysis import format_table, run_once, sample_trace
from repro.cluster import presets
from repro.core.policy import SiaPolicyParams
from repro.metrics import summarize
from repro.schedulers import SiaScheduler

P_VALUES = (-1.0, -0.5, 0.1, 0.5, 1.0)
ROUND_DURATIONS = (30.0, 60.0, 180.0, 300.0)


def run_p_sweep():
    scale = bench_scale()
    cluster = presets.heterogeneous()
    trace = sample_trace("helios", seed=0, scale=scale)
    out = {}
    for p in P_VALUES:
        scheduler = SiaScheduler(SiaPolicyParams(p=p))
        out[p] = summarize(run_once(cluster, scheduler, trace.jobs,
                                    scale=scale))
    return out


def run_round_sweep():
    scale = bench_scale()
    cluster = presets.heterogeneous()
    trace = sample_trace("helios", seed=0, scale=scale)
    out = {}
    for duration in ROUND_DURATIONS:
        scheduler = SiaScheduler(round_duration=duration)
        out[duration] = summarize(run_once(cluster, scheduler, trace.jobs,
                                           scale=scale))
    return out


def test_fig10_fairness_power_sweep(benchmark):
    results = run_once_benchmarked(benchmark, run_p_sweep)
    rows = [{"p": p, "avg_jct_h": round(s.avg_jct_hours, 3),
             "p99_jct_h": round(s.p99_jct_hours, 3),
             "makespan_h": round(s.makespan_hours, 3)}
            for p, s in results.items()]
    emit("fig10_p_sweep",
         format_table(rows, title="Figure 10 (left): Sia metrics vs p"))

    jcts = [s.avg_jct_hours for s in results.values()]
    # Robustness: avg JCT varies by less than 2.5x across the whole sweep
    # (the paper reports modest variation, not order-of-magnitude swings).
    assert max(jcts) < 2.5 * min(jcts)
    # The default p = -0.5 is within 25% of the best setting.
    best = min(jcts)
    assert results[-0.5].avg_jct_hours <= 1.25 * best


def test_fig10_round_duration_sweep(benchmark):
    results = run_once_benchmarked(benchmark, run_round_sweep)
    rows = [{"round_s": int(d), "avg_jct_h": round(s.avg_jct_hours, 3),
             "avg_restarts": round(s.avg_restarts, 2)}
            for d, s in results.items()]
    emit("fig10_round_duration",
         format_table(rows, title="Figure 10 (right): avg JCT vs round "
                                  "duration"))

    # 60 s (the default) is within 20% of the best duration tested.
    best = min(s.avg_jct_hours for s in results.values())
    assert results[60.0].avg_jct_hours <= 1.2 * best
    # Longer rounds reduce reallocation churn...
    assert results[300.0].avg_restarts <= results[30.0].avg_restarts
    # ...but cost average JCT relative to the default (paper: +12% at 300 s).
    assert results[300.0].avg_jct_hours >= 0.95 * results[60.0].avg_jct_hours

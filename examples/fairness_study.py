#!/usr/bin/env python
"""Finish-time fairness study (Section 5.5) and the fairness knob p.

Runs Sia with three settings of its fairness power p on the same trace and
reports finish-time-fairness ratios (Equation 6) alongside efficiency
metrics — illustrating the robustness the paper claims in Section 5.7.

Run:  python examples/fairness_study.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import presets
from repro.core.policy import SiaPolicyParams
from repro.metrics import fairness_metrics, summarize
from repro.schedulers import SiaScheduler
from repro.sim import simulate
from repro.workloads import helios_trace


def main() -> None:
    cluster = presets.heterogeneous()
    # Near-full-length jobs: fairness ratios are only meaningful when jobs
    # dwarf scheduling overheads.
    trace = helios_trace(seed=3, num_jobs=24, work_scale_factor=1.0,
                         window_hours=1.0)

    rows = []
    for p in (-1.0, -0.5, 0.5):
        print(f"simulating Sia with p={p} ...")
        scheduler = SiaScheduler(SiaPolicyParams(p=p))
        result = simulate(cluster, scheduler, trace.jobs, max_hours=300)
        summary = summarize(result)
        fairness = fairness_metrics(result, trace.jobs, cluster)
        rows.append({
            "p": p,
            "avg_jct_h": round(summary.avg_jct_hours, 3),
            "p99_jct_h": round(summary.p99_jct_hours, 3),
            "makespan_h": round(summary.makespan_hours, 2),
            "worst_ftf": round(fairness.worst_ftf, 2),
            "unfair_frac": round(fairness.unfair_fraction, 3),
        })

    print()
    print(format_table(rows, title="Sia fairness power p: efficiency vs "
                                   "finish-time fairness"))
    print("\nEquation 6 recap: rho < 1 means the job finished faster shared "
          "than in an isolated fair-share cluster; rho > 1 means it was "
          "treated unfairly.")


if __name__ == "__main__":
    main()

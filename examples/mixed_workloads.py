#!/usr/bin/env python
"""Mixed workloads and operational realities on one cluster.

Section 3.4 argues Sia generalizes beyond adaptive training: any job that
provides a goodput estimator can be scheduled.  This example runs, side by
side on the 64-GPU heterogeneous testbed:

* adaptive training jobs (BERT, ResNet18),
* a batch-inference job (throughput-as-goodput),
* a latency-SLO serving job (feasible-configurations-only),
* a non-preemptible training job (reservation semantics),

and injects worker failures (Section 3.5's checkpoint-recovery path).

Run:  python examples/mixed_workloads.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import presets
from repro.jobs import make_job
from repro.schedulers import SiaScheduler
from repro.sim import simulate


def main() -> None:
    cluster = presets.heterogeneous()
    jobs = [
        make_job("train-bert", "bert", 0.0, work_scale=0.3),
        make_job("train-resnet", "resnet18", 120.0, work_scale=0.3),
        make_job("train-yolo", "yolov3", 240.0, work_scale=0.05),
        make_job("score-imagenet", "resnet50", 300.0, work_scale=0.01,
                 workload="batch_inference"),
        make_job("serve-bert", "bert", 600.0, work_scale=0.002,
                 workload="latency_inference", latency_slo=0.005,
                 max_gpus=2),
        make_job("reserved", "deepspeech2", 0.0, work_scale=0.2,
                 preemptible=False),
    ]

    print(f"Cluster: {cluster.describe()}; injecting ~0.5 failures per "
          "node-hour\n")
    result = simulate(cluster, SiaScheduler(), jobs,
                      node_failure_rate=0.5, seed=7, max_hours=50)

    rows = []
    for record in result.jobs:
        job = next(j for j in jobs if j.job_id == record.job_id)
        rows.append({
            "job": record.job_id,
            "workload": job.workload,
            "preemptible": job.preemptible,
            "jct_min": round(record.jct(result.end_time) / 60.0, 1),
            "restarts": record.num_restarts,
            "gpu_types": "+".join(sorted(record.gpu_seconds)) or "-",
        })
    print(format_table(rows, title="Mixed workload under Sia"))
    print(f"\nworker failures injected: {result.node_failures}")
    serve = result.job("serve-bert")
    print(f"serving job ran exclusively on: {sorted(serve.gpu_seconds)} "
          "(the only type meeting its 5 ms SLO)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Policy-runtime scalability (Figure 9): how long does one scheduling
decision take as the cluster grows from 64 to 1024 GPUs?

Sia's ILP over the restricted configuration set stays sub-second; Pollux's
genetic algorithm grows much faster; Gavel's LP is fastest (it ignores
adaptivity entirely).

Run:  python examples/scalability.py
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.cluster import presets
from repro.core.types import AdaptivityMode, ProfilingMode
from repro.jobs import make_job
from repro.schedulers import GavelScheduler, PolluxScheduler, SiaScheduler
from repro.schedulers.base import JobView
from repro.workloads import helios_trace


def views_for(scheduler, cluster, num_jobs: int, rigid: bool):
    trace = helios_trace(seed=4, num_jobs=num_jobs)
    views = []
    for job in trace.jobs:
        if rigid:
            job = make_job(job.job_id, job.model_name, job.submit_time,
                           adaptivity=AdaptivityMode.RIGID, fixed_num_gpus=2,
                           fixed_batch_size=job.profile.min_bsz)
        estimator = scheduler.make_estimator(job, cluster,
                                             ProfilingMode.BOOTSTRAP)
        estimator.profile_initial()
        views.append(JobView(job=job, estimator=estimator,
                             current_config=None, age=0.0,
                             num_restarts=0, progress=0.0))
    return views


def main() -> None:
    rows = []
    for size in (64, 128, 256, 512, 1024):
        cluster = presets.scaled_heterogeneous(size)
        num_jobs = 12 * (size // 64)
        row = {"gpus": size, "jobs": num_jobs}
        for name, scheduler, rigid in [("sia", SiaScheduler(), False),
                                       ("pollux", PolluxScheduler(), False),
                                       ("gavel", GavelScheduler(), True)]:
            views = views_for(scheduler, cluster, num_jobs, rigid)
            start = time.perf_counter()
            scheduler.decide(views, cluster, {}, 0.0)
            row[f"{name}_s"] = round(time.perf_counter() - start, 4)
        rows.append(row)
        print(f"done {size} GPUs")
    print()
    print(format_table(rows, title="Figure 9: one scheduling decision, "
                                   "seconds"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: schedule a small adaptive workload with Sia.

Samples a Philly-like trace, runs it through the discrete-time simulator on
the paper's 64-GPU heterogeneous testbed, and prints the standard metrics
plus a per-job breakdown.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import presets
from repro.metrics import summarize
from repro.schedulers import SiaScheduler
from repro.sim import simulate
from repro.workloads import philly_trace


def main() -> None:
    cluster = presets.heterogeneous()
    print(f"Cluster: {cluster.describe()}  ({cluster.total_gpus} GPUs)\n")

    # 40 jobs over a 1-hour submission window, at 1/5 of the paper's job
    # lengths so the example finishes in seconds.
    trace = philly_trace(seed=0, num_jobs=40, work_scale_factor=0.2,
                         window_hours=1.0)
    print(f"Trace: {trace.num_jobs} jobs — models: {trace.models_used()}\n")

    result = simulate(cluster, SiaScheduler(), trace.jobs)

    summary = summarize(result)
    print(format_table([summary.as_row()], title="Cluster-level metrics"))

    rows = []
    for record in result.jobs[:10]:
        rows.append({
            "job": record.job_id.rsplit("-", 1)[-1],
            "model": record.model_name,
            "jct_min": round(record.jct(result.end_time) / 60.0, 1),
            "restarts": record.num_restarts,
            "gpu_hours": round(record.total_gpu_seconds / 3600.0, 2),
            "gpu_types": "+".join(sorted(record.gpu_seconds)),
        })
    print()
    print(format_table(rows, title="First 10 jobs"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Compare Sia against the paper's baselines on one heterogeneous trace.

Reproduces a mini Table 3: Sia and Pollux run the adaptive trace; Gavel,
Shockwave and Themis run its TunedJobs conversion (the rigid schedulers
cannot auto-tune — Section 4.3).  Prints the comparison table and each
scheduler's job-to-GPU-type matching for BERT (the Figure 6 effect).

Run:  python examples/scheduler_comparison.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.cluster import presets
from repro.metrics import gpu_hours_by_model, summarize
from repro.schedulers import (GavelScheduler, PolluxScheduler,
                              ShockwaveScheduler, SiaScheduler,
                              ThemisScheduler)
from repro.sim import simulate
from repro.workloads import helios_trace, tuned_jobs


def main() -> None:
    cluster = presets.heterogeneous()
    trace = helios_trace(seed=1, num_jobs=48, work_scale_factor=0.2,
                         window_hours=0.8)
    rigid = tuned_jobs(trace.jobs, cluster, seed=1)

    runs = [
        ("sia", SiaScheduler(), trace.jobs),
        ("pollux", PolluxScheduler(), trace.jobs),
        ("gavel+TJ", GavelScheduler(), rigid),
        ("shockwave+TJ", ShockwaveScheduler(), rigid),
        ("themis+TJ", ThemisScheduler(), rigid),
    ]

    rows = []
    matching_rows = []
    for name, scheduler, jobs in runs:
        print(f"simulating {name} ...")
        result = simulate(cluster, scheduler, jobs, max_hours=150)
        row = summarize(result).as_row()
        row["scheduler"] = name
        rows.append(row)

        by_model = gpu_hours_by_model(result)
        bert = by_model.get("bert", {})
        total = sum(bert.values()) or 1.0
        matching_rows.append({
            "scheduler": name,
            "bert_on_a100_pct": round(100 * bert.get("a100", 0.0) / total, 1),
            "bert_on_rtx_pct": round(100 * bert.get("rtx", 0.0) / total, 1),
            "bert_on_t4_pct": round(100 * bert.get("t4", 0.0) / total, 1),
        })

    print()
    print(format_table(rows, title="Mini Table 3 — heterogeneous 64-GPU "
                                   "cluster, Helios-like trace"))
    print()
    print(format_table(matching_rows,
                       title="Figure 6 effect — where BERT jobs ran"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Elastically scaling a hybrid-parallel (PMP x DP) GPT job (Section 5.3).

A 2.8B GPT fine-tuning job is pipeline-partitioned (2 stages on a100, 8 on
rtx) and scales out with data parallelism in whole-replica units.  A burst
of BERT jobs arrives mid-run; Sia is the first cluster scheduler that can
elastically re-size such jobs, and this example prints the resulting
allocation timeline.

Run:  python examples/hybrid_parallel.py
"""

from __future__ import annotations

from repro.analysis import format_series, format_table
from repro.cluster import presets
from repro.jobs import HybridPerfModel, HybridSpec, make_job
from repro.schedulers import SiaScheduler
from repro.sim import simulate


def main() -> None:
    spec = HybridSpec()  # {'a100': 2, 'rtx': 8} stages, 48 x 1 micro-batches
    perf = HybridPerfModel("gpt-2.8b", spec)

    # Left plot of the Section 5.3 figure: throughput vs GPU count.
    points = []
    for replicas in (1, 2, 4, 8, 16):
        gpus = replicas * spec.stages_per_type["rtx"]
        points.append((gpus, perf.throughput("rtx", replicas,
                                             max(1, gpus // 8))))
    print(format_series(points, x_label="rtx GPUs", y_label="samples/s",
                        title="GPT-2.8B throughput scaling (rtx, GPipe)"))
    print()

    # Right plot: Sia adapting the job under changing congestion.
    cluster = presets.heterogeneous()
    gpt = make_job("gpt", "gpt-2.8b", 0.0, hybrid=spec, max_gpus=16,
                   work_scale=0.05)
    burst = [make_job(f"bert-{i}", "bert", 1800.0, work_scale=0.3)
             for i in range(16)]
    print("simulating GPT + BERT burst under Sia ...")
    result = simulate(cluster, SiaScheduler(), [gpt, *burst], max_hours=100)

    rows = []
    last = None
    for t, gpu_type, count in result.allocation_timeline("gpt"):
        state = (gpu_type, count)
        if state != last:  # print only allocation changes
            rows.append({"t_min": round(t / 60.0, 1),
                         "gpu_type": gpu_type or "(queued)",
                         "gpus": count,
                         "replicas": count // spec.stages_per_type[gpu_type]
                         if count else 0})
            last = state
    print(format_table(rows, title="GPT allocation changes over time"))
    record = result.job("gpt")
    print(f"\nGPT finished after {record.jct() / 3600.0:.2f} h with "
          f"{record.num_restarts} restarts.")


if __name__ == "__main__":
    main()
